// Exported planning/execution/merge surface for distributed callers.
//
// farm.Run owns the whole lifecycle in one process: plan, execute, journal,
// merge. The coordinator/worker service (internal/service) splits that
// lifecycle across machines — the coordinator plans and merges, workers
// execute shards — so the phases are exposed here as first-class steps:
//
//	NewPlan        the canonical shard plan + fingerprint for a Config
//	ExecuteShard   one work unit, exactly as a farm worker goroutine runs it
//	Merge          canonical-order merge + triage over complete results
//	OpenJournal    the fsynced JSONL checkpoint as a durable work-queue log
//	Encode/DecodeShardRecord   the journal's wire form, reused for uploads
//
// The determinism contract carries over unchanged: ExecuteShard derives the
// shard seed from the plan seed via rng.Split on the shard key, so a shard
// executed on a remote worker returns byte-identical merge inputs to one
// executed in-process, and Merge over any assignment of shards to workers
// (including leases reclaimed from killed workers and re-executed) equals
// the single-process run.
package farm

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/manifest"
)

// Plan is the canonical shard plan for a Config: the work-queue contents a
// coordinator serves and the execution recipe a worker follows. Plans are
// immutable after NewPlan; the same Config always yields the same plan and
// the same Fingerprint.
type Plan struct {
	cfg   Config
	kind  apps.FleetKind
	fleet *apps.Fleet
	// campaigns is the normalized campaign list (Config.Campaigns or all
	// four), shards the canonical campaign-major shard order.
	campaigns []core.Campaign
	shards    []ShardKey
	// fingerprint covers everything that shapes shard outcomes (seed,
	// fleet, plan, generator scaling) — the same value the checkpoint
	// journal header carries, embedded in every service lease so a worker
	// can never execute a shard from the wrong run.
	fingerprint uint64
	// comps counts fuzzable components per package, the exact per-shard
	// intent-cost input the LPT scheduler uses.
	comps map[string]int
}

// NewPlan normalizes cfg and builds the canonical shard plan. It performs
// the same planning steps as Run: fleet construction, target selection,
// campaign-major shard enumeration, and fingerprinting.
func NewPlan(cfg Config) (*Plan, error) {
	campaigns := cfg.Campaigns
	if len(campaigns) == 0 {
		campaigns = core.AllCampaigns
	}
	kind := cfg.Fleet
	if kind == 0 {
		kind = apps.WearFleet
	}
	fleet, err := buildFleet(kind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	targets, err := selectTargets(fleet, cfg.Packages)
	if err != nil {
		return nil, err
	}
	var shards []ShardKey
	for _, c := range campaigns {
		for _, p := range targets {
			shards = append(shards, ShardKey{Campaign: c, Package: p.Name})
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("farm: empty shard plan (no packages matched)")
	}
	comps := make(map[string]int, len(targets))
	for _, p := range targets {
		for _, c := range p.Components {
			if c.Type == manifest.Activity || c.Type == manifest.Service {
				comps[p.Name]++
			}
		}
	}
	return &Plan{
		cfg:         cfg,
		kind:        kind,
		fleet:       fleet,
		campaigns:   campaigns,
		shards:      shards,
		fingerprint: fingerprint(cfg.Seed, kind.String(), shards, cfg.Gen),
		comps:       comps,
	}, nil
}

// Shards returns the canonical shard order. Callers must not mutate it.
func (p *Plan) Shards() []ShardKey { return p.shards }

// Fingerprint identifies the run this plan describes; it equals the
// checkpoint journal's header fingerprint.
func (p *Plan) Fingerprint() uint64 { return p.fingerprint }

// Fleet returns the canonical fleet instance (metadata for the merge).
func (p *Plan) Fleet() *apps.Fleet { return p.fleet }

// FleetKind returns the normalized population kind.
func (p *Plan) FleetKind() apps.FleetKind { return p.kind }

// Campaigns returns the normalized campaign list.
func (p *Plan) Campaigns() []core.Campaign { return p.campaigns }

// EstimatedIntents returns shard idx's exact intent volume — the LPT
// scheduling weight. A coordinator granting leases largest-first gets the
// same tail-latency bound the in-process farm gets from scheduleLPT.
func (p *Plan) EstimatedIntents(idx int) int {
	key := p.shards[idx]
	return key.Campaign.CountPerComponent(p.cfg.Gen) * p.comps[key.Package]
}

// ExecuteShard runs one work unit in full isolation, exactly as a farm
// worker goroutine would: snapshot-cloned (or fresh-booted) device, private
// fleet behaviour state, per-shard generator split, triage collection and
// flight recording per the plan's Config. Safe for concurrent use — shards
// share nothing but the immutable boot templates. Callers executing many
// shards sequentially should prefer an Executor, which additionally reuses
// a hot device across the calls.
func (p *Plan) ExecuteShard(idx int) (*ShardResult, error) {
	if idx < 0 || idx >= len(p.shards) {
		return nil, fmt.Errorf("farm: shard index %d outside plan of %d", idx, len(p.shards))
	}
	return runShard(p.cfg, p.kind, p.shards[idx], newFarmMetrics(p.cfg.Telemetry), nil)
}

// Executor is a persistent-mode shard runner bound to one plan: the same
// hot-device-reset reuse a farm worker goroutine gets, exposed to
// distributed callers that execute leased shards one at a time in a loop
// (the service worker). Not safe for concurrent use — one Executor per
// executing goroutine, like one device per worker.
type Executor struct {
	p  *Plan
	ex *unitExecutor
}

// NewExecutor returns a fresh persistent executor for this plan.
func (p *Plan) NewExecutor() *Executor {
	return &Executor{p: p, ex: newUnitExecutor()}
}

// ExecuteShard runs one work unit like Plan.ExecuteShard, reusing the
// executor's hot device when the plan's Sharding allows persist.
func (e *Executor) ExecuteShard(idx int) (*ShardResult, error) {
	p := e.p
	if idx < 0 || idx >= len(p.shards) {
		return nil, fmt.Errorf("farm: shard index %d outside plan of %d", idx, len(p.shards))
	}
	return runShard(p.cfg, p.kind, p.shards[idx], newFarmMetrics(p.cfg.Telemetry), e.ex)
}

// Merge folds one complete result set, in canonical plan order, into the
// merged Result and runs triage (unless the plan's Config disables it) —
// the exact post-barrier tail of Run. Every slot must hold the result for
// the same-indexed shard; order of arrival is irrelevant by construction.
func (p *Plan) Merge(results []*ShardResult) (*Result, error) {
	if len(results) != len(p.shards) {
		return nil, fmt.Errorf("farm: merge needs %d shard results, got %d", len(p.shards), len(results))
	}
	for i, sr := range results {
		if sr == nil {
			return nil, fmt.Errorf("farm: merge: shard %d (%s) has no result", i, p.shards[i])
		}
		if sr.Key != p.shards[i] {
			return nil, fmt.Errorf("farm: merge: slot %d holds %s, want %s", i, sr.Key, p.shards[i])
		}
	}
	met := newFarmMetrics(p.cfg.Telemetry)
	res := merge(p.fleet, p.campaigns, p.shards, results, met)
	if !p.cfg.DisableTriage {
		res.Triage = triageCrashes(p.cfg, p.kind, p.fleet, results)
		met.crashesRaw.Set(float64(res.Triage.Crashes))
		met.crashBuckets.Set(float64(res.Triage.Unique()))
	}
	return res, nil
}

// EncodeShardRecord renders one shard result in the checkpoint journal's
// wire form (one JSON line, no trailing newline). The same bytes serve as
// a journal record and as a worker's result-upload body, so a record that
// round-trips the journal and one that crossed the network restore
// identically — the byte-identical-merge proof covers both.
func EncodeShardRecord(idx int, sr *ShardResult) ([]byte, error) {
	return encodeJournalLine(journalRecord{
		Index:     idx,
		Key:       sr.Key,
		Seed:      sr.Seed,
		Sent:      sr.Sent,
		BootCount: sr.BootCount,
		Summary:   sr.Summary,
		Report:    exportReport(sr.Report),
		Crashes:   exportCrashes(sr.Crashes),
	})
}

// DecodeShardRecord parses a journal-form shard record back into the merge
// input it encodes.
func DecodeShardRecord(data []byte) (int, *ShardResult, error) {
	var rec journalRecord
	if err := decodeJournalLine(data, &rec); err != nil {
		return 0, nil, fmt.Errorf("farm: decode shard record: %w", err)
	}
	return rec.Index, &ShardResult{
		Key:       rec.Key,
		Seed:      rec.Seed,
		Sent:      rec.Sent,
		BootCount: rec.BootCount,
		Summary:   rec.Summary,
		Report:    rec.Report.restore(),
		Crashes:   restoreCrashes(rec.Crashes),
	}, nil
}

// ShardJournal is the plan-scoped durable work-queue log: the same fsynced
// JSONL checkpoint file farm.Run writes, opened against a Plan so a
// coordinator can persist completed shards one record at a time and recover
// the done-set after a restart.
type ShardJournal struct {
	j *journal
}

// OpenJournal creates (or, with resume, reloads) the checkpoint journal at
// path for this plan. On resume it returns the restored results indexed by
// shard — the durable done-set; every nil slot is pending work. A journal
// written by a different plan (fingerprint mismatch) is refused, the same
// guarantee -resume gives the CLI.
func (p *Plan) OpenJournal(path string, resume bool) (*ShardJournal, []*ShardResult, int, error) {
	cfg := p.cfg
	cfg.Sharding.Checkpoint = path
	cfg.Sharding.Resume = resume
	results := make([]*ShardResult, len(p.shards))
	jnl, resumed, err := prepareCheckpoint(cfg, p.fingerprint, p.kind, p.shards, results)
	if err != nil {
		return nil, nil, 0, err
	}
	return &ShardJournal{j: jnl}, results, resumed, nil
}

// Append durably records one completed shard (fsynced before returning).
func (sj *ShardJournal) Append(idx int, sr *ShardResult) error {
	return sj.j.appendLine(journalRecord{
		Index:     idx,
		Key:       sr.Key,
		Seed:      sr.Seed,
		Sent:      sr.Sent,
		BootCount: sr.BootCount,
		Summary:   sr.Summary,
		Report:    exportReport(sr.Report),
		Crashes:   exportCrashes(sr.Crashes),
	})
}

// AppendEncoded durably records an already-encoded shard record (the bytes
// a worker uploaded), avoiding a decode/re-encode round trip on the
// coordinator's hot path. The caller must have validated the record.
func (sj *ShardJournal) AppendEncoded(line []byte) error {
	return sj.j.appendRaw(line)
}

// Close flushes and releases the journal file handle.
func (sj *ShardJournal) Close() error {
	if sj == nil {
		return nil
	}
	return sj.j.Close()
}
