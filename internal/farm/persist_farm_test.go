package farm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// persistExport runs one campaign over the given packages and renders the
// canonical export with execution metadata blanked.
func persistExport(t *testing.T, c core.Campaign, pkgs []string, gen core.GeneratorConfig,
	sharding core.Sharding, reg *telemetry.Registry) string {
	t.Helper()
	res, err := farm.Run(farm.Config{
		Seed:      1,
		Campaigns: []core.Campaign{c},
		Packages:  pkgs,
		Gen:       gen,
		Sharding:  sharding,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatalf("campaign %s: %v", c.Letter(), err)
	}
	res.Workers = 0
	res.Resumed = 0
	data, err := service.ExportResult(res, 1)
	if err != nil {
		t.Fatalf("campaign %s export: %v", c.Letter(), err)
	}
	return string(data)
}

// TestPersistEquivalencePerCampaign is the reset-equivalence property test
// at campaign granularity: for each campaign A-D and the fault-injection
// campaign F, a persistent-mode run — where one hot device per worker is
// reset in place between shards, including shards that just crashed
// processes or closed fault windows on it — exports byte-identically to a
// clone-per-shard run.
func TestPersistEquivalencePerCampaign(t *testing.T) {
	for _, c := range append(append([]core.Campaign{}, core.AllCampaigns...), core.CampaignF) {
		want := persistExport(t, c, testPackages, testGen(), core.Sharding{Workers: 1, DisablePersist: true}, nil)
		reg := telemetry.NewRegistry()
		got := persistExport(t, c, testPackages, testGen(), core.Sharding{Workers: 2}, reg)
		if got != want {
			t.Errorf("campaign %s: persistent-mode export differs from clone-per-shard:\n--- clone ---\n%s\n--- persist ---\n%s",
				c.Letter(), want, got)
		}
		snap := reg.Snapshot()
		if snap.Counters["farm_persist_reuses_total"] == 0 {
			t.Errorf("campaign %s: persistent run recorded zero reuses", c.Letter())
		}
	}
}

// TestPersistRetiresRebootShardDevice drives the full-scale campaign A
// reboot (com.motorola.omni's sensor-service escalation) through a
// persistent worker followed by another shard on the same worker: the
// rebooted hot device must retire, the next shard must fall back to a
// clone, and the merged export must still match clone-per-shard mode.
func TestPersistRetiresRebootShardDevice(t *testing.T) {
	pkgs := []string{"com.motorola.omni", "com.heartwatch.wear"}
	// Zero Gen = full paper scale; the reboot needs the full action matrix.
	gen := core.GeneratorConfig{}
	want := persistExport(t, core.CampaignA, pkgs, gen, core.Sharding{Workers: 1, DisablePersist: true}, nil)

	reg := telemetry.NewRegistry()
	got := persistExport(t, core.CampaignA, pkgs, gen, core.Sharding{Workers: 1}, reg)
	if got != want {
		t.Error("persistent-mode export differs from clone-per-shard after a reboot shard")
	}
	snap := reg.Snapshot()
	if n := snap.Counters["farm_persist_retires_total"]; n == 0 {
		t.Error("rebooted hot device was not retired")
	}
	if n := snap.Counters["farm_persist_fallbacks_total"]; n == 0 {
		t.Error("no fallback clone after retirement")
	}
}
