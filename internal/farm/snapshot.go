// Forkserver-style shard startup: instead of booting a fresh device and
// rebuilding the fleet population for every (campaign, package) shard, the
// farm boots one template device per distinct device configuration, builds
// one fleet template per (fleet kind, seed), and stamps each shard out of
// them — wearos.Snapshot.Clone for the device, apps.FleetTemplate.
// Instantiate for the behaviour models. Clones are observably identical to
// fresh boots (the snapshot determinism contract), so the merged result is
// byte-identical in both modes; core.Sharding.DisableSnapshot selects the
// fresh-boot path for benchmarking and bisection.
package farm

import (
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/wearos"
)

// fleetKey identifies one shared fleet template.
type fleetKey struct {
	kind apps.FleetKind
	seed uint64
}

// snapshotCache holds the process-wide boot templates. wearos.Config is a
// comparable value of scalars, so it serves directly as the device config
// fingerprint; a different LogCapacity or aging model keys a different
// snapshot, which is exactly the invalidation rule we want.
type snapshotCache struct {
	mu     sync.Mutex
	fleets map[fleetKey]*apps.FleetTemplate
	devs   map[wearos.Config]*wearos.Snapshot
}

// cacheLimit bounds each cache map. Real processes use a handful of
// (kind, seed, config) combinations; a runaway caller cycling seeds (e.g. a
// fuzz test) must not grow the maps without bound, so hitting the limit
// evicts one resident entry to make room — correctness never depends on a
// hit. (Evicting a single entry, not the whole map: dropping everything on
// overflow would force every concurrent run sharing the cache to rebuild
// its template on its next miss.)
const cacheLimit = 16

// evictOne removes one arbitrary entry so an insert stays within
// cacheLimit. Go's map iteration order is effectively random, which is a
// perfectly good eviction policy for a cache whose working set fits many
// times over in normal operation.
func evictOne[K comparable, V any](m map[K]V) {
	for k := range m {
		delete(m, k)
		return
	}
}

// bootCache is the process-wide template store. Templates are immutable
// once built, so sharing across concurrent farm runs is safe.
var bootCache snapshotCache

// fleetTemplate returns the shared population template for (kind, seed),
// building it on miss. hit reports whether it was already cached.
func (c *snapshotCache) fleetTemplate(kind apps.FleetKind, seed uint64) (t *apps.FleetTemplate, hit bool, err error) {
	key := fleetKey{kind: kind, seed: seed}
	c.mu.Lock()
	if t = c.fleets[key]; t != nil {
		c.mu.Unlock()
		return t, true, nil
	}
	// Build under the lock: concurrent workers missing on the same key must
	// not build (and race to publish) duplicate templates, and construction
	// is a one-time cost per run.
	t, err = apps.NewFleetTemplate(kind, seed)
	if err != nil {
		c.mu.Unlock()
		return nil, false, err
	}
	if len(c.fleets) >= cacheLimit {
		evictOne(c.fleets)
	}
	if c.fleets == nil {
		c.fleets = make(map[fleetKey]*apps.FleetTemplate)
	}
	c.fleets[key] = t
	c.mu.Unlock()
	return t, false, nil
}

// deviceSnapshot returns the post-boot snapshot for the given device
// configuration, booting and snapshotting a template device on miss.
func (c *snapshotCache) deviceSnapshot(cfg wearos.Config) (s *wearos.Snapshot, hit bool, err error) {
	c.mu.Lock()
	if s = c.devs[cfg]; s != nil {
		c.mu.Unlock()
		return s, true, nil
	}
	s, err = wearos.New(cfg).Snapshot()
	if err != nil {
		c.mu.Unlock()
		return nil, false, err
	}
	if len(c.devs) >= cacheLimit {
		evictOne(c.devs)
	}
	if c.devs == nil {
		c.devs = make(map[wearos.Config]*wearos.Snapshot)
	}
	c.devs[cfg] = s
	c.mu.Unlock()
	return s, false, nil
}

// bootShard produces the per-shard (fleet, device) pair, via the snapshot
// caches unless cfg disables them. The returned device has the shard's
// package installed and its handlers registered, and nothing else — exactly
// the state runShard previously reached by booting fresh. met records the
// cache outcome and the clone latency (a hit requires both the fleet
// template and the device snapshot to be cached). source names the boot
// path ("clone" or "fresh-boot") for the shard status board.
func bootShard(cfg Config, kind apps.FleetKind, pkgName string, met farmMetrics) (*apps.Fleet, *wearos.OS, string, error) {
	if cfg.Sharding.DisableSnapshot {
		fleet, err := apps.BuildFleetPackage(kind, cfg.Seed, pkgName)
		if err != nil {
			return nil, nil, "", err
		}
		dev := wearos.New(deviceConfig(kind))
		if _, err := fleet.InstallPackageInto(dev, pkgName); err != nil {
			return nil, nil, "", err
		}
		return fleet, dev, BootFresh, nil
	}

	start := time.Now()
	tmpl, fleetHit, err := bootCache.fleetTemplate(kind, cfg.Seed)
	if err != nil {
		return nil, nil, "", err
	}
	snap, devHit, err := bootCache.deviceSnapshot(deviceConfig(kind))
	if err != nil {
		return nil, nil, "", err
	}
	fleet, err := tmpl.Instantiate(pkgName)
	if err != nil {
		return nil, nil, "", err
	}
	dev := snap.Clone()
	if _, err := fleet.InstallPackageInto(dev, pkgName); err != nil {
		return nil, nil, "", err
	}
	met.cloneSeconds.Observe(time.Since(start).Seconds())
	if fleetHit && devHit {
		met.snapHits.Inc()
	} else {
		met.snapMisses.Inc()
	}
	return fleet, dev, BootClone, nil
}

// Boot-source names reported on ShardResult.BootSource and the status board.
const (
	BootClone = "clone"
	BootFresh = "fresh-boot"
	// BootReuse marks a shard served by the persistent executor's hot device
	// (reset in place instead of cloned; see persist.go).
	BootReuse = "reuse"
)
