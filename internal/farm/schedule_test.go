package farm

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestScheduleLPT pins the tail-aware dispatch order: shards sort by exact
// up-front cost (campaign per-component count × fuzzable components),
// largest first, with ties keeping canonical plan order.
func TestScheduleLPT(t *testing.T) {
	gen := core.GeneratorConfig{ActionStride: 4, SchemeStride: 2, RandomVariants: 1, ExtrasVariants: 1}
	plan := []ShardKey{
		{Campaign: core.CampaignA, Package: "com.small"},  // 1 component
		{Campaign: core.CampaignA, Package: "com.big"},    // 9 components
		{Campaign: core.CampaignA, Package: "com.medium"}, // 4 components
		{Campaign: core.CampaignA, Package: "com.big2"},   // 9 components (tie with com.big)
	}
	comps := map[string]int{"com.small": 1, "com.big": 9, "com.medium": 4, "com.big2": 9}

	pending := []int{0, 1, 2, 3}
	scheduleLPT(pending, plan, comps, gen)
	if want := []int{1, 3, 2, 0}; !reflect.DeepEqual(pending, want) {
		t.Fatalf("LPT order = %v, want %v (big, big2 tie in plan order, medium, small)", pending, want)
	}

	// A partially resumed run schedules only what is pending, same rule.
	partial := []int{0, 2}
	scheduleLPT(partial, plan, comps, gen)
	if want := []int{2, 0}; !reflect.DeepEqual(partial, want) {
		t.Fatalf("partial LPT order = %v, want %v", partial, want)
	}

	// Campaigns with bigger per-component counts outrank component count
	// alone when the product says so.
	mixed := []ShardKey{
		{Campaign: core.CampaignA, Package: "com.small"},
		{Campaign: core.CampaignD, Package: "com.small"},
	}
	if core.CampaignA.CountPerComponent(gen) == core.CampaignD.CountPerComponent(gen) {
		t.Skip("campaigns A and D have equal per-component cost at this gen scale")
	}
	order := []int{0, 1}
	scheduleLPT(order, mixed, map[string]int{"com.small": 1}, gen)
	first := mixed[order[0]].Campaign
	wantFirst := core.CampaignA
	if core.CampaignD.CountPerComponent(gen) > core.CampaignA.CountPerComponent(gen) {
		wantFirst = core.CampaignD
	}
	if first != wantFirst {
		t.Fatalf("campaign %s dispatched first, want %s", first.Letter(), wantFirst.Letter())
	}
}
