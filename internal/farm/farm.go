// Package farm is the campaign execution engine: it shards a fuzz study
// into independent (campaign, package) work units, runs them on a pool of
// worker goroutines — each unit on a freshly booted simulated device with
// its own fleet instance — journals progress to a checkpoint file after
// every completed shard, and merges the per-shard analysis results into a
// single report.
//
// The determinism contract (docs/farm.md): for a fixed seed and shard plan,
// the merged result is byte-identical for any worker count and across any
// kill/resume sequence. Three properties make that hold:
//
//  1. Intent generation splits a fresh SplitMix64 stream per shard
//     (rng.Split on the shard key), so no shard's randomness depends on
//     execution order.
//  2. Every shard boots its own device and builds its own fleet from the
//     study seed, so no simulator or behaviour-model state leaks between
//     shards or workers.
//  3. Merging happens in canonical shard-plan order after all shards
//     complete, regardless of completion order.
//
// The simulated device itself stays single-threaded; parallelism exists
// only between devices, which is exactly how the paper's physical campaigns
// would scale across watches.
package farm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/triage"
	"repro/internal/wearos"
)

// Config parameterizes one farm run.
type Config struct {
	// Seed drives fleet construction and the per-shard generator splits.
	Seed uint64
	// Fleet selects the population (zero value = the wear fleet).
	Fleet apps.FleetKind
	// Campaigns lists the FICs to run (nil = all four, in Table I order).
	Campaigns []core.Campaign
	// Packages optionally restricts the run to the named packages; nil
	// fuzzes the whole fleet. Order is irrelevant — the shard plan always
	// follows fleet order.
	Packages []string
	// Gen scales generation. Gen.Seed is ignored: each shard derives its
	// seed from Config.Seed via rng.Split on the shard key.
	Gen core.GeneratorConfig
	// Sharding sets worker count and checkpoint behaviour.
	Sharding core.Sharding
	// DisableTriage skips crash bucketing and intent minimization.
	DisableTriage bool
	// Telemetry, when non-nil, receives farm execution metrics (shard
	// gauges, per-campaign intent counters, shard/merge latency
	// histograms). Each shard additionally runs its device with a private
	// registry that is absorbed into this one when the shard completes, so
	// the farm endpoint exposes device/fuzzer/binder metrics aggregated
	// across every shard instead of the old single-device blind spot.
	Telemetry *telemetry.Registry
	// Status, when non-nil, is kept current with the live shard table
	// (state, queue wait, clone source, throughput, ETA); serve it with
	// StatusHandler. Status is presentation-only: it never influences
	// scheduling or results.
	Status *StatusBoard
	// Progress, when non-nil, is called after every completed shard with
	// the cumulative completed/total counts and intents sent so far. Calls
	// are serialized but arrive in completion order, not plan order.
	Progress func(done, total int, key ShardKey, sentSoFar int)
}

// ShardKey identifies one work unit: one campaign against one package.
type ShardKey struct {
	Campaign core.Campaign `json:"campaign"`
	Package  string        `json:"package"`
}

// String renders "A/com.foo.bar" — also the rng.Split label for the shard.
func (k ShardKey) String() string { return k.Campaign.Letter() + "/" + k.Package }

// ShardResult is everything one completed shard contributes to the merge.
type ShardResult struct {
	Key       ShardKey
	Seed      uint64
	Sent      int
	BootCount int
	Summary   core.Summary
	Report    *analysis.Report
	Crashes   []*triage.Crash
	// BootSource reports how the shard device came up ("clone" or
	// "fresh-boot"); live-status detail only, excluded from the journal and
	// the merge.
	BootSource string
}

// CampaignResult is the merged per-campaign view (Table III's unit).
type CampaignResult struct {
	Campaign  core.Campaign
	Report    *analysis.Report
	Sent      int
	Summaries []core.Summary
}

// Result is the merged outcome of a farm run.
type Result struct {
	// Fleet is the canonical fleet instance (metadata: categories, origins).
	Fleet     *apps.Fleet
	Campaigns []CampaignResult
	// Combined merges the per-campaign reports.
	Combined *analysis.Report
	Sent     int
	// Shards is the plan size; Resumed counts shards restored from the
	// checkpoint journal instead of executed.
	Shards  int
	Resumed int
	Workers int
	// Triage holds deduplicated crash buckets (nil when DisableTriage).
	Triage *triage.Result
}

// farmMetrics caches the engine's metric handles (all nil-safe no-ops when
// Config.Telemetry is nil).
type farmMetrics struct {
	shardsTotal    *telemetry.Gauge
	inflight       *telemetry.Gauge
	workers        *telemetry.Gauge
	done           *telemetry.Counter
	resumed        *telemetry.Counter
	intents        *telemetry.Counter
	shardSeconds   *telemetry.Histogram
	mergeSeconds   *telemetry.Histogram
	crashesRaw     *telemetry.Gauge
	crashBuckets   *telemetry.Gauge
	snapHits       *telemetry.Counter
	snapMisses     *telemetry.Counter
	cloneSeconds   *telemetry.Histogram
	queueWait      *telemetry.Histogram
	recorderEvents *telemetry.Counter
	// Persistent-executor outcomes: shards served by resetting a worker's
	// hot device in place, devices retired after a failed reset, and shards
	// that fell back to a fresh clone while persist was enabled.
	persistReuses    *telemetry.Counter
	persistRetires   *telemetry.Counter
	persistFallbacks *telemetry.Counter
	resetSeconds     *telemetry.Histogram
}

func newFarmMetrics(reg *telemetry.Registry) farmMetrics {
	return farmMetrics{
		shardsTotal:    reg.Gauge("farm_shards_total"),
		inflight:       reg.Gauge("farm_shards_inflight"),
		workers:        reg.Gauge("farm_workers"),
		done:           reg.Counter("farm_shards_done_total"),
		resumed:        reg.Counter("farm_shards_resumed_total"),
		intents:        reg.Counter("farm_intents_total"),
		shardSeconds:   reg.Histogram("farm_shard_seconds", telemetry.DefLatencyBuckets),
		mergeSeconds:   reg.Histogram("farm_merge_seconds", telemetry.DefLatencyBuckets),
		crashesRaw:     reg.Gauge("farm_crashes_raw"),
		crashBuckets:   reg.Gauge("farm_crash_buckets"),
		snapHits:       reg.Counter("farm_snapshot_hits_total"),
		snapMisses:     reg.Counter("farm_snapshot_misses_total"),
		cloneSeconds:   reg.Histogram("farm_clone_seconds", telemetry.DefLatencyBuckets),
		queueWait:      reg.Histogram("farm_shard_queue_wait_seconds", telemetry.DefLatencyBuckets),
		recorderEvents: reg.Counter("farm_recorder_events_total"),

		persistReuses:    reg.Counter("farm_persist_reuses_total"),
		persistRetires:   reg.Counter("farm_persist_retires_total"),
		persistFallbacks: reg.Counter("farm_persist_fallbacks_total"),
		resetSeconds:     reg.Histogram("farm_reset_seconds", telemetry.DefLatencyBuckets),
	}
}

// buildFleet materializes the population for the given kind. Each shard
// calls this for itself: behaviour models are stateful, so sharing a fleet
// between devices would leak state across shards and break determinism.
func buildFleet(kind apps.FleetKind, seed uint64) (*apps.Fleet, error) {
	switch kind {
	case apps.WearFleet, 0:
		return apps.BuildWearFleet(seed), nil
	case apps.PhoneFleet:
		return apps.BuildPhoneFleet(seed), nil
	case apps.LegacyPhoneFleet:
		return apps.BuildLegacyPhoneFleet(seed), nil
	default:
		return nil, fmt.Errorf("farm: unsupported fleet kind %s (intent campaigns only)", kind)
	}
}

// deviceConfig returns the per-shard device configuration. Device-level
// telemetry is disabled: shard devices are ephemeral and their registries
// unreachable, and PR 1's perturbation tests guarantee telemetry does not
// affect simulation outcomes either way.
func deviceConfig(kind apps.FleetKind) wearos.Config {
	var cfg wearos.Config
	switch kind {
	case apps.PhoneFleet, apps.LegacyPhoneFleet:
		cfg = wearos.DefaultPhoneConfig()
	default:
		cfg = wearos.DefaultWatchConfig()
	}
	cfg.DisableTelemetry = true
	return cfg
}

// Run executes the farm: plan, resume, fan out, journal, merge, triage.
func Run(cfg Config) (*Result, error) {
	// Canonical shard plan: campaign-major, fleet order within a campaign.
	p, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	campaigns, fleetKind, fleet := p.campaigns, p.kind, p.fleet
	plan, fp := p.shards, p.fingerprint

	met := newFarmMetrics(cfg.Telemetry)
	workers := cfg.Sharding.NormalizedWorkers()
	met.shardsTotal.Set(float64(len(plan)))
	met.workers.Set(float64(workers))
	cfg.Status.reset(plan, workers)
	if cfg.Telemetry != nil && cfg.Status != nil {
		// Derived live-status gauges refresh at scrape time from the board
		// rather than riding the shard hot path.
		board := cfg.Status
		pendingG := cfg.Telemetry.Gauge("farm_shards_pending")
		runningG := cfg.Telemetry.Gauge("farm_shards_running")
		etaG := cfg.Telemetry.Gauge("farm_eta_seconds")
		rateG := cfg.Telemetry.Gauge("farm_intents_per_second")
		cfg.Telemetry.OnCollect(func() {
			s := board.Status()
			pendingG.Set(float64(s.Pending))
			runningG.Set(float64(s.Running))
			etaG.Set(s.ETASeconds)
			rateG.Set(s.IntentsPerSecond)
		})
	}

	results := make([]*ShardResult, len(plan))
	resumed := 0
	var jnl *journal
	if cfg.Sharding.Checkpoint != "" {
		jnl, resumed, err = prepareCheckpoint(cfg, fp, fleetKind, plan, results)
		if err != nil {
			return nil, err
		}
		defer jnl.Close()
		met.resumed.Add(uint64(resumed))
		for idx, r := range results {
			if r != nil {
				cfg.Status.markResumed(idx, r.Sent)
			}
		}
	}

	// Per-package fuzzable-component counts (computed by NewPlan) feed the
	// tail-aware scheduler's shard cost estimates.
	if err := runPending(cfg, fleetKind, plan, p.comps, results, jnl, workers, met); err != nil {
		return nil, err
	}

	res := merge(fleet, campaigns, plan, results, met)
	res.Resumed = resumed
	res.Workers = workers
	if !cfg.DisableTriage {
		res.Triage = triageCrashes(cfg, fleetKind, fleet, results)
		met.crashesRaw.Set(float64(res.Triage.Crashes))
		met.crashBuckets.Set(float64(res.Triage.Unique()))
	}
	return res, nil
}

// selectTargets filters the fleet packages, preserving fleet order, and
// rejects names that match nothing (a typo'd -app must not silently produce
// an empty campaign).
func selectTargets(fleet *apps.Fleet, names []string) ([]*manifest.Package, error) {
	if len(names) == 0 {
		return fleet.Packages, nil
	}
	allow := make(map[string]bool, len(names))
	for _, n := range names {
		allow[n] = true
	}
	var out []*manifest.Package
	for _, p := range fleet.Packages {
		if allow[p.Name] {
			out = append(out, p)
			delete(allow, p.Name)
		}
	}
	for n := range allow {
		return nil, fmt.Errorf("farm: package %q not in the %s fleet", n, fleet.Kind)
	}
	return out, nil
}

// prepareCheckpoint loads (on resume) or creates the journal, restores
// completed shards into results, and returns the append handle.
func prepareCheckpoint(cfg Config, fp uint64, kind apps.FleetKind, plan []ShardKey, results []*ShardResult) (*journal, int, error) {
	path := cfg.Sharding.Checkpoint
	hdr := journalHeader{
		Version:     journalVersion,
		Fingerprint: fp,
		Shards:      len(plan),
		Seed:        cfg.Seed,
		Fleet:       kind.String(),
	}
	if cfg.Sharding.Resume {
		prev, done, validLen, err := loadJournal(path)
		switch {
		case err == nil:
			if prev.Fingerprint != fp {
				return nil, 0, fmt.Errorf(
					"farm: checkpoint %s was written by a different run (fingerprint %016x, want %016x); refusing to resume",
					path, prev.Fingerprint, fp)
			}
			resumed := 0
			for idx, rec := range done {
				if idx < 0 || idx >= len(plan) || plan[idx] != rec.Key {
					return nil, 0, fmt.Errorf("farm: checkpoint %s: record %d does not match the shard plan", path, idx)
				}
				results[idx] = &ShardResult{
					Key:       rec.Key,
					Seed:      rec.Seed,
					Sent:      rec.Sent,
					BootCount: rec.BootCount,
					Summary:   rec.Summary,
					Report:    rec.Report.restore(),
					Crashes:   restoreCrashes(rec.Crashes),
				}
				resumed++
			}
			jnl, err := openJournalAppend(path, validLen)
			return jnl, resumed, err
		case isNotExist(err):
			// Resuming a run that never started is a fresh run.
			jnl, err := createJournal(path, hdr)
			return jnl, 0, err
		default:
			return nil, 0, err
		}
	}
	jnl, err := createJournal(path, hdr)
	return jnl, 0, err
}

// runPending executes every shard without a result yet on a worker pool and
// journals each completion. Pending shards are dispatched longest-first
// (scheduleLPT) so the biggest shard starts immediately instead of landing
// on an otherwise-drained pool and gating the merge barrier alone.
func runPending(cfg Config, kind apps.FleetKind, plan []ShardKey, comps map[string]int, results []*ShardResult, jnl *journal, workers int, met farmMetrics) error {
	var pending []int
	sent := 0
	done := 0
	for i, r := range results {
		if r == nil {
			pending = append(pending, i)
		} else {
			sent += r.Sent
			done++
		}
	}
	if len(pending) == 0 {
		return nil
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	scheduleLPT(pending, plan, comps, cfg.Gen)

	idxCh := make(chan int)
	feedStart := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards results/sent/done/journal append/progress
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one persistent executor: a hot device reset in
			// place between the shards this worker leases, with transparent
			// fallback to cloning (persist.go).
			ex := newUnitExecutor()
			for idx := range idxCh {
				if failed() {
					continue // drain
				}
				wait := time.Since(feedStart)
				met.queueWait.Observe(wait.Seconds())
				met.inflight.Add(1)
				cfg.Status.markRunning(idx, wait)
				start := time.Now()
				sr, err := runShard(cfg, kind, plan[idx], met, ex)
				dur := time.Since(start)
				met.shardSeconds.Observe(dur.Seconds())
				met.inflight.Add(-1)
				if err != nil {
					cfg.Status.markFailed(idx)
					fail(fmt.Errorf("farm: shard %s: %w", plan[idx], err))
					continue
				}
				cfg.Status.markDone(idx, sr.Sent, dur, sr.BootSource)
				met.done.Inc()
				met.intents.Add(uint64(sr.Sent))
				mu.Lock()
				results[idx] = sr
				sent += sr.Sent
				done++
				var jerr error
				if jnl != nil {
					jerr = jnl.appendLine(journalRecord{
						Index:     idx,
						Key:       sr.Key,
						Seed:      sr.Seed,
						Sent:      sr.Sent,
						BootCount: sr.BootCount,
						Summary:   sr.Summary,
						Report:    exportReport(sr.Report),
						Crashes:   exportCrashes(sr.Crashes),
					})
				}
				if cfg.Progress != nil {
					cfg.Progress(done, len(plan), sr.Key, sent)
				}
				mu.Unlock()
				if jerr != nil {
					fail(jerr)
				}
			}
		}()
	}
	for _, idx := range pending {
		idxCh <- idx
	}
	close(idxCh)
	wg.Wait()
	return firstErr
}

// scheduleLPT reorders pending shard indices longest-processing-time-first.
// Shard cost is proportional to the intents it will inject — the campaign's
// per-component count times the package's fuzzable-component count — which
// is known exactly up front, so the classic LPT bound applies: dispatching
// the largest shards first keeps the last-finishing worker's overhang to at
// most one small shard instead of one large one. Ties keep canonical plan
// order, so the schedule (and therefore the journal append order under one
// worker) is deterministic.
func scheduleLPT(pending []int, plan []ShardKey, comps map[string]int, gen core.GeneratorConfig) {
	est := make(map[int]int, len(pending))
	for _, idx := range pending {
		key := plan[idx]
		est[idx] = key.Campaign.CountPerComponent(gen) * comps[key.Package]
	}
	sort.SliceStable(pending, func(i, j int) bool {
		a, b := pending[i], pending[j]
		if est[a] != est[b] {
			return est[a] > est[b]
		}
		return a < b
	})
}

// runShard executes one work unit in full isolation: own fleet behaviour
// state, own device, own collectors. The device comes from the snapshot
// cache (a clone of the booted template, observably identical to a fresh
// boot) unless snapshots are disabled; the fleet shares the template's
// manifests but samples behaviour for just this shard's package. The
// shard's generator seed is a SplitMix64 split of the study seed on the
// shard key, so generation is independent of execution order and worker
// count.
func runShard(cfg Config, kind apps.FleetKind, key ShardKey, met farmMetrics, ex *unitExecutor) (*ShardResult, error) {
	fleet, dev, source, err := ex.boot(cfg, kind, key.Package, met)
	if err != nil {
		return nil, err
	}
	pkg := fleet.Package(key.Package)

	// A per-shard metric registry rides next to the farm registry: the
	// device/fuzzer/binder/logcat metrics land here and are absorbed into
	// cfg.Telemetry when the shard completes, so the farm endpoint shows
	// them aggregated across shards. The registry is attached post-boot
	// because cloned devices share one immutable template Config.
	var shardReg *telemetry.Registry
	if cfg.Telemetry != nil {
		shardReg = telemetry.NewRegistry()
		dev.AttachTelemetry(shardReg, nil)
	}

	col := analysis.NewCollector().UseTelemetry(shardReg)
	dev.Logcat().Subscribe(col)
	var tri *triage.Collector
	if !cfg.DisableTriage {
		tri = triage.NewCollector()
		dev.Logcat().Subscribe(tri)
	}

	// The flight recorder exists for the failure windows triage attaches,
	// so it rides only when triage (or the farm registry, which counts its
	// events) wants it; a bare benchmark run stays recorder-free.
	var rec *telemetry.Recorder
	if tri != nil || cfg.Telemetry != nil {
		rec = telemetry.NewRecorder(0)
		dev.SetFlightRecorder(rec)
	}

	gen := cfg.Gen
	gen.Seed = rng.New(cfg.Seed).Split("farm-shard-" + key.String()).Uint64()
	inj := &core.Injector{Dev: dev, Cfg: gen}

	// Fault shards (FIC F) attach the fault-injection engine after boot (the
	// engine publishes a binder probe endpoint, which snapshotting forbids on
	// templates). The fault seed is its own split of the study seed, so the
	// schedule is independent of execution order and worker count, and the
	// window budget is the shard's exact expected dispatch count.
	var eng *faultinject.Engine
	if key.Campaign == core.CampaignF {
		budget := key.Campaign.CountPerComponent(gen) * fuzzableComponents(pkg)
		fseed := rng.New(cfg.Seed).Split("fault-" + key.String()).Uint64()
		eng = faultinject.NewEngine(dev, faultinject.NewPlan(fseed, budget), key.Package)
	}
	if tri != nil {
		inj.Observe = func(in *intent.Intent, res wearos.DeliveryResult) {
			if res == wearos.DeliveredCrash || res == wearos.DeliveredANR {
				// The failure just finalized a triage record; pair it with
				// its reproducer intent and snapshot the recorder's window —
				// the events that led here, ending at this failure.
				tri.AttachIntent(in)
				tri.AttachFlight(rec.Trace(), rec.Window())
			}
			if eng != nil && eng.TakeVerdict() {
				// A fault window just closed and its VERDICT line finalized a
				// fault record; pair it with the in-flight intent (the
				// workload coordinate) and the recorder window (which holds
				// the fault begin/probe/verdict event trail).
				tri.AttachIntent(in)
				tri.AttachFlight(rec.Trace(), rec.Window())
			}
		}
	}
	run := inj.FuzzApp(key.Campaign, pkg)
	if eng != nil {
		// A window still open at campaign end is graded now, so its verdict
		// lands in this shard's collectors before results are snapshotted.
		eng.Finish()
	}

	sr := &ShardResult{
		Key:        key,
		Seed:       gen.Seed,
		Sent:       run.Sent,
		BootCount:  dev.BootCount(),
		Summary:    core.Summarize(run, dev.BootCount()),
		Report:     col.Report(),
		BootSource: source,
	}
	if tri != nil {
		sr.Crashes = tri.Crashes()
	}
	if cfg.Telemetry != nil {
		met.recorderEvents.Add(rec.Recorded())
		cfg.Telemetry.Absorb(shardReg)
	}
	return sr, nil
}

// merge folds the shard results, in canonical plan order, into per-campaign
// and combined reports. Plan order is campaign-major, so each campaign's
// shards are a contiguous run.
func merge(fleet *apps.Fleet, campaigns []core.Campaign, plan []ShardKey, results []*ShardResult, met farmMetrics) *Result {
	start := time.Now()
	defer func() { met.mergeSeconds.Observe(time.Since(start).Seconds()) }()

	res := &Result{Fleet: fleet, Combined: analysis.AnalyzeEntries(nil), Shards: len(plan)}
	byCampaign := make(map[core.Campaign]*CampaignResult, len(campaigns))
	for _, c := range campaigns {
		cr := &CampaignResult{Campaign: c, Report: analysis.AnalyzeEntries(nil)}
		byCampaign[c] = cr
	}
	for i, key := range plan {
		sr := results[i]
		cr := byCampaign[key.Campaign]
		cr.Report.Merge(sr.Report)
		cr.Sent += sr.Sent
		cr.Summaries = append(cr.Summaries, sr.Summary)
	}
	for _, c := range campaigns {
		cr := byCampaign[c]
		res.Campaigns = append(res.Campaigns, *cr)
		res.Combined.Merge(cr.Report)
		res.Sent += cr.Sent
	}
	return res
}

// triageCrashes buckets every crash across the run (canonical shard order)
// and greedily minimizes one reproducer per bucket on a fresh oracle
// device. Runs after the merge, serially, so its output is as deterministic
// as the merge itself.
func triageCrashes(cfg Config, kind apps.FleetKind, fleet *apps.Fleet, results []*ShardResult) *triage.Result {
	var all []*triage.Crash
	for _, sr := range results {
		all = append(all, sr.Crashes...)
	}
	res := triage.Bucketize(all)
	// One persistent executor serves every bucket's oracle device: triage
	// runs serially after the merge, so the buckets re-use a single hot
	// device the same way a worker's shards do.
	ex := newUnitExecutor()
	for i := range res.Buckets {
		minimizeBucket(cfg, kind, fleet, &res.Buckets[i], ex)
	}
	return res
}

// minimizeBucket reduces the bucket's exemplar intent while the same stack
// bucket keeps reproducing on a fresh oracle device. Oracle boots go
// through the executor too (reset-or-clone when snapshots are enabled) but
// with a zero-value farmMetrics so triage does not pollute the shard-level
// hit/clone/persist telemetry.
func minimizeBucket(cfg Config, kind apps.FleetKind, fleet *apps.Fleet, b *triage.Bucket, ex *unitExecutor) {
	// Only exception-style failures minimize: a fault verdict is caused by
	// the injected fault window, not the intent in flight, so shrinking that
	// intent on a fault-free oracle device can never reproduce the bucket.
	if b.Kind != triage.KindCrash && b.Kind != triage.KindANR && b.Kind != "" {
		return
	}
	exemplar := b.Exemplar
	if exemplar == nil || exemplar.Intent == nil {
		return
	}
	ctype, ok := componentType(fleet, exemplar.Intent.Component)
	if !ok {
		return
	}
	_, dev, _, err := ex.boot(cfg, kind, exemplar.Intent.Component.Package, farmMetrics{})
	if err != nil {
		return
	}
	tri := triage.NewCollector()
	dev.Logcat().Subscribe(tri)
	// ANR buckets reproduce as ANRs, crash buckets as crashes.
	wantRes := wearos.DeliveredCrash
	if b.Kind == triage.KindANR {
		wantRes = wearos.DeliveredANR
	}
	seen := 0
	oracle := func(cand *intent.Intent) bool {
		in := cand.Clone()
		in.SenderUID = core.QGJUID
		var res wearos.DeliveryResult
		if ctype == manifest.Service {
			res = dev.StartService(in)
		} else {
			res = dev.StartActivity(in)
		}
		if res != wantRes {
			return false
		}
		crashes := tri.Crashes()
		if len(crashes) <= seen {
			return false
		}
		rec := crashes[len(crashes)-1]
		seen = len(crashes)
		return rec.Hash() == b.Hash
	}
	min, trials := triage.Minimize(exemplar.Intent, oracle)
	b.Trials = trials
	if min != nil {
		b.Reproduced = true
		b.Minimized = min
	}
}

// fuzzableComponents counts the package's Activities and Services — the
// component set FuzzApp iterates, and therefore the exact dispatch budget
// multiplier for a fault shard's window schedule.
func fuzzableComponents(pkg *manifest.Package) int {
	n := 0
	for _, c := range pkg.Components {
		if c.Type == manifest.Activity || c.Type == manifest.Service {
			n++
		}
	}
	return n
}

// componentType looks up the component's manifest type in the fleet.
func componentType(fleet *apps.Fleet, cn intent.ComponentName) (manifest.ComponentType, bool) {
	pkg := fleet.Package(cn.Package)
	if pkg == nil {
		return 0, false
	}
	for _, c := range pkg.Components {
		if c.Name == cn {
			return c.Type, true
		}
	}
	return 0, false
}
