// Persistent-mode shard execution. The snapshot path (snapshot.go) stamps a
// fresh device clone per campaign unit; the persistent executor goes one
// step further, AFL-persistent-mode style: each worker keeps ONE hot device
// and resets it in place between the shards it leases (wearos.OS.ResetTo),
// and keeps its instantiated fleets and rewinds their behaviour draw
// streams instead of resampling (apps.FleetTemplate.Reset).
//
// Correctness never depends on reuse. Every reset is validated against the
// template's captured state hash; a device that crashed its way into a
// reboot, aged past its template, or tripped the hash check in any way is
// retired and the unit transparently falls back to a fresh clone. The
// merged study result is byte-identical across persist on/off — the
// cross-mode equivalence tests pin it — so core.Sharding.DisablePersist is
// an execution strategy, excluded from the checkpoint fingerprint exactly
// like DisableSnapshot and Workers.
package farm

import (
	"time"

	"repro/internal/apps"
	"repro/internal/wearos"
)

// unitExecutor carries one worker's reusable execution state across the
// campaign units it runs: the hot device, the template it was cut from, and
// the per-package fleets already instantiated. Not safe for concurrent use —
// each worker goroutine owns exactly one.
type unitExecutor struct {
	dev  *wearos.OS
	snap *wearos.Snapshot // template dev was cloned from; nil iff dev is nil
	tmpl *apps.FleetTemplate
	// fleets caches instantiated fleets by package name. The shard plan is
	// campaign-major, so every package comes around once per campaign; the
	// cache turns the 2nd..Nth visits into a draw-stream rewind.
	fleets map[string]*apps.Fleet
}

// newUnitExecutor returns an empty executor; the first boot populates it.
func newUnitExecutor() *unitExecutor {
	return &unitExecutor{fleets: make(map[string]*apps.Fleet)}
}

// boot produces the per-shard (fleet, device) pair like bootShard, but
// reuses the executor's hot device and cached fleets when the run allows it
// (snapshots on, persist not disabled). A nil executor always clones —
// callers without worker-affine state just use the plain path.
func (e *unitExecutor) boot(cfg Config, kind apps.FleetKind, pkgName string, met farmMetrics) (*apps.Fleet, *wearos.OS, string, error) {
	if e == nil || cfg.Sharding.DisableSnapshot || cfg.Sharding.DisablePersist {
		return bootShard(cfg, kind, pkgName, met)
	}

	tmpl, fleetHit, err := bootCache.fleetTemplate(kind, cfg.Seed)
	if err != nil {
		return nil, nil, "", err
	}
	snap, devHit, err := bootCache.deviceSnapshot(deviceConfig(kind))
	if err != nil {
		return nil, nil, "", err
	}
	if fleetHit && devHit {
		met.snapHits.Inc()
	} else {
		met.snapMisses.Inc()
	}

	fleet := e.fleet(tmpl, pkgName)
	if fleet == nil {
		if fleet, err = tmpl.Instantiate(pkgName); err != nil {
			return nil, nil, "", err
		}
		e.tmpl = tmpl
		e.fleets[pkgName] = fleet
	}

	dev, source := e.device(snap, met)
	if _, err := fleet.InstallPackageInto(dev, pkgName); err != nil {
		// The hot device now has a half-installed package on it; retire it
		// so the next unit starts from a clean clone.
		e.dev, e.snap = nil, nil
		return nil, nil, "", err
	}
	e.dev, e.snap = dev, snap
	return fleet, dev, source, nil
}

// fleet returns the cached fleet for pkg rewound to its freshly
// instantiated state, or nil when the cache cannot serve it (template
// changed, or the rewind failed its sanity checks).
func (e *unitExecutor) fleet(tmpl *apps.FleetTemplate, pkg string) *apps.Fleet {
	if e.tmpl != tmpl {
		// Different template (seed or kind changed mid-process): every cached
		// fleet is stale.
		clear(e.fleets)
		return nil
	}
	f := e.fleets[pkg]
	if f == nil {
		return nil
	}
	if !tmpl.Reset(f, pkg) {
		delete(e.fleets, pkg)
		return nil
	}
	return f
}

// device returns the executor's hot device reset to snap, or a fresh clone
// when there is no reusable device. The persist counters record the
// outcome: a reuse, or a retirement (reset attempted and failed) followed
// by a fallback clone. A cold start (no device yet, or the template
// changed) counts as a fallback but not a retirement.
func (e *unitExecutor) device(snap *wearos.Snapshot, met farmMetrics) (*wearos.OS, string) {
	if e.dev != nil && e.snap == snap {
		start := time.Now()
		ok := e.dev.ResetTo(snap)
		met.resetSeconds.Observe(time.Since(start).Seconds())
		if ok {
			met.persistReuses.Inc()
			return e.dev, BootReuse
		}
		met.persistRetires.Inc()
	}
	met.persistFallbacks.Inc()
	start := time.Now()
	dev := snap.Clone()
	met.cloneSeconds.Observe(time.Since(start).Seconds())
	return dev, BootClone
}
