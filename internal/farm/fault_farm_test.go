package farm_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/service"
	"repro/internal/triage"
)

// runFaultFarm executes a campaign-F run over the test packages.
func runFaultFarm(t *testing.T, sharding core.Sharding) *farm.Result {
	t.Helper()
	res, err := farm.Run(farm.Config{
		Seed:      1,
		Campaigns: []core.Campaign{core.CampaignF},
		Packages:  testPackages,
		Gen:       testGen(),
		Sharding:  sharding,
	})
	if err != nil {
		t.Fatalf("fault farm: %v", err)
	}
	return res
}

// faultExport renders the canonical merged export with execution metadata
// blanked, the byte-identity the determinism contract promises.
func faultExport(t *testing.T, res *farm.Result) string {
	t.Helper()
	res.Workers = 0
	res.Resumed = 0
	data, err := service.ExportResult(res, 1)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	return string(data)
}

func TestFaultCampaignWorkerInvariance(t *testing.T) {
	serial := runFaultFarm(t, core.Sharding{Workers: 1})
	want := faultExport(t, serial)
	if serial.Sent == 0 {
		t.Fatal("fault campaign sent nothing")
	}
	if serial.Triage == nil || serial.Triage.Faults == 0 {
		t.Fatal("fault campaign graded no windows")
	}
	kinds := map[string]bool{}
	for _, b := range serial.Triage.Buckets {
		if b.Kind == triage.KindCrash || b.Kind == triage.KindANR || b.Kind == "" {
			continue
		}
		kinds[b.Class] = true // fault buckets carry the injected kind in Class
	}
	if len(kinds) < 4 {
		t.Fatalf("fault buckets cover %d kinds (%v), want >= 4", len(kinds), kinds)
	}

	for _, workers := range []int{4, 8} {
		res := runFaultFarm(t, core.Sharding{Workers: workers})
		if got := faultExport(t, res); got != want {
			t.Errorf("workers=%d fault export differs from workers=1", workers)
		}
	}
}

func TestFaultCampaignResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	killed := filepath.Join(dir, "killed.ckpt")

	uninterrupted := runFaultFarm(t, core.Sharding{Workers: 2, Checkpoint: full})
	want := faultExport(t, uninterrupted)

	// Simulate a SIGKILL mid-run: keep the header plus one completed shard
	// and a torn partial record.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	torn := strings.Join(lines[:2], "\n") + "\n" + `{"index":1,"key":{"camp`
	if err := os.WriteFile(killed, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := runFaultFarm(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true})
	if resumed.Resumed != 1 {
		t.Fatalf("resumed = %d shards, want 1", resumed.Resumed)
	}
	if got := faultExport(t, resumed); got != want {
		t.Errorf("resumed fault run differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestFaultJournalFingerprintGate: a journal written by a fault run must not
// resume under a different fault-model-relevant seed.
func TestFaultJournalFingerprintGate(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fault.ckpt")
	if _, err := farm.Run(farm.Config{
		Seed:      1,
		Campaigns: []core.Campaign{core.CampaignF},
		Packages:  testPackages[:1],
		Gen:       testGen(),
		Sharding:  core.Sharding{Workers: 1, Checkpoint: ckpt},
	}); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	_, err := farm.Run(farm.Config{
		Seed:      2,
		Campaigns: []core.Campaign{core.CampaignF},
		Packages:  testPackages[:1],
		Gen:       testGen(),
		Sharding:  core.Sharding{Workers: 1, Checkpoint: ckpt, Resume: true},
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}
