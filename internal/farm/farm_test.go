package farm_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// testPackages is a small slice of the wear fleet covering crashy and quiet
// apps, enough for every campaign to produce work without full-study cost.
var testPackages = []string{"com.heartwatch.wear", "com.strava.wear", "com.whatsapp.wear"}

func testGen() core.GeneratorConfig { return experiments.QuickGen(10) }

// exportForCompare renders a study result as canonical JSON with the
// execution metadata (worker count, checkpoint path, resumed count) blanked:
// the determinism contract is about the scientific outputs — Table III,
// Fig 3a, campaign counts, triage buckets — not about how the run executed.
func exportForCompare(t *testing.T, sr *experiments.StudyResult) string {
	t.Helper()
	exp := report.ExportStudy(sr, 1)
	exp.Sharding = nil
	data, err := json.MarshalIndent(exp, "", " ")
	if err != nil {
		t.Fatalf("marshal export: %v", err)
	}
	return string(data)
}

func runStudy(t *testing.T, sharding core.Sharding) *experiments.StudyResult {
	t.Helper()
	sr, err := experiments.RunWearStudy(experiments.Options{
		Seed:     1,
		Gen:      testGen(),
		Packages: testPackages,
		Sharding: sharding,
	})
	if err != nil {
		t.Fatalf("study: %v", err)
	}
	return sr
}

func TestWorkerCountInvariance(t *testing.T) {
	serial := runStudy(t, core.Sharding{Workers: 1})
	parallel := runStudy(t, core.Sharding{Workers: 8})

	if serial.Sent == 0 {
		t.Fatal("study sent nothing; scale the generator up")
	}
	if got, want := exportForCompare(t, parallel), exportForCompare(t, serial); got != want {
		t.Errorf("workers=8 export differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", want, got)
	}
	if serial.Sharding == nil || serial.Sharding.Workers != 1 {
		t.Fatalf("serial sharding info = %+v", serial.Sharding)
	}
	if parallel.Sharding == nil || parallel.Sharding.Workers != 8 {
		t.Fatalf("parallel sharding info = %+v", parallel.Sharding)
	}
	wantShards := 4 * len(testPackages)
	if serial.Sharding.Shards != wantShards {
		t.Fatalf("shards = %d, want %d", serial.Sharding.Shards, wantShards)
	}
	if serial.Triage == nil {
		t.Fatal("farm run must carry a triage result")
	}
	if serial.Triage.Crashes > 0 && serial.Triage.Unique() == 0 {
		t.Fatal("crashes observed but no buckets")
	}
	if serial.Triage.Unique() > serial.Triage.Crashes {
		t.Fatal("more unique signatures than raw crashes")
	}
}

func TestResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	killed := filepath.Join(dir, "killed.ckpt")

	uninterrupted := runStudy(t, core.Sharding{Workers: 2, Checkpoint: full})
	want := exportForCompare(t, uninterrupted)

	// Simulate a SIGKILL after three shards: keep the header plus three
	// records from the completed journal and append a torn partial line.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	const keep = 3
	torn := strings.Join(lines[:1+keep], "\n") + "\n" + `{"index":7,"key":{"camp`
	if err := os.WriteFile(killed, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true})
	if got := exportForCompare(t, resumed); got != want {
		t.Errorf("resumed run differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
	if resumed.Sharding.Resumed != keep {
		t.Fatalf("resumed = %d shards, want %d", resumed.Sharding.Resumed, keep)
	}

	// The journal is now complete: resuming again replays every shard.
	replayed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true})
	if got := exportForCompare(t, replayed); got != want {
		t.Error("full-journal replay differs from uninterrupted run")
	}
	if replayed.Sharding.Resumed != replayed.Sharding.Shards {
		t.Fatalf("replay resumed %d of %d shards", replayed.Sharding.Resumed, replayed.Sharding.Shards)
	}
}

func TestResumeRejectsForeignJournal(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: testPackages[:1],
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 2, Checkpoint: ckpt},
	}); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	// Same checkpoint, different seed: the plan fingerprint must not match.
	_, err := farm.Run(farm.Config{
		Seed:     2,
		Packages: testPackages[:1],
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 2, Checkpoint: ckpt, Resume: true},
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

func TestResumeWithoutJournalStartsFresh(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "never-written.ckpt")
	res, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: testPackages[:1],
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 2, Checkpoint: ckpt, Resume: true},
	})
	if err != nil {
		t.Fatalf("resume against absent journal: %v", err)
	}
	if res.Resumed != 0 {
		t.Fatalf("resumed = %d, want 0", res.Resumed)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("fresh journal not created: %v", err)
	}
}

func TestUnknownPackageFails(t *testing.T) {
	_, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: []string{"com.does.not.exist"},
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "com.does.not.exist") {
		t.Fatalf("err = %v, want unknown-package failure", err)
	}
}

func TestFarmTelemetryAndProgress(t *testing.T) {
	reg := telemetry.NewRegistry()
	var calls int
	lastDone := 0
	res, err := farm.Run(farm.Config{
		Seed:      1,
		Campaigns: []core.Campaign{core.CampaignA},
		Packages:  testPackages,
		Gen:       testGen(),
		Sharding:  core.Sharding{Workers: 4},
		Telemetry: reg,
		Progress: func(done, total int, key farm.ShardKey, sentSoFar int) {
			calls++
			if done <= lastDone {
				t.Errorf("progress done went %d -> %d", lastDone, done)
			}
			lastDone = done
			if total != len(testPackages) {
				t.Errorf("total = %d, want %d", total, len(testPackages))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(testPackages) {
		t.Fatalf("progress calls = %d, want %d", calls, len(testPackages))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["farm_shards_done_total"]; got != uint64(len(testPackages)) {
		t.Fatalf("farm_shards_done_total = %d", got)
	}
	if got := snap.Counters["farm_intents_total"]; got != uint64(res.Sent) {
		t.Fatalf("farm_intents_total = %d, want %d", got, res.Sent)
	}
	if snap.Gauges["farm_workers"] != 4 {
		t.Fatalf("farm_workers = %v", snap.Gauges["farm_workers"])
	}
	if snap.Gauges["farm_shards_inflight"] != 0 {
		t.Fatalf("farm_shards_inflight = %v after completion", snap.Gauges["farm_shards_inflight"])
	}
}

// TestFlightRecorderAttachedToBuckets checks the crash-forensics contract:
// every triage bucket's exemplar carries a flight-record window — recent
// structured events linked by the shard's trace ID and ending at the
// failure verdict — and the window survives into the JSON export.
func TestFlightRecorderAttachedToBuckets(t *testing.T) {
	sr := runStudy(t, core.Sharding{Workers: 4})
	if sr.Triage == nil || sr.Triage.Crashes == 0 {
		t.Skip("no failures at this scale; nothing to attach")
	}
	for _, b := range sr.Triage.Buckets {
		if b.Exemplar == nil {
			t.Fatalf("bucket %016x has no exemplar", b.Hash)
		}
		if b.Exemplar.Trace == "" {
			t.Errorf("bucket %016x exemplar has no trace ID", b.Hash)
		}
		w := b.Exemplar.Flight
		if len(w) == 0 {
			t.Fatalf("bucket %016x exemplar has no flight window", b.Hash)
		}
		// The window ends at the failure: the final event is the dispatch
		// result of the failing injection, and the verdict event (exception
		// class or "anr") lands just before it, during delivery settling.
		last := w[len(w)-1]
		if last.Kind != telemetry.EventDispatch {
			t.Errorf("bucket %016x window ends with %s, want %s", b.Hash, last.Kind, telemetry.EventDispatch)
		}
		verdicts := 0
		for _, e := range w {
			if e.Kind == telemetry.EventVerdict {
				verdicts++
				if b.Kind == "anr" && e.Detail == "" {
					t.Errorf("ANR bucket %016x verdict has empty detail", b.Hash)
				}
			}
		}
		if verdicts == 0 {
			t.Errorf("bucket %016x window carries no verdict event", b.Hash)
		}
		for i, e := range w {
			if e.Trace != b.Exemplar.Trace {
				t.Errorf("bucket %016x event %d trace %q != exemplar trace %q", b.Hash, i, e.Trace, b.Exemplar.Trace)
			}
			if i > 0 && e.Seq <= w[i-1].Seq {
				t.Errorf("bucket %016x window seq not increasing at %d: %d after %d", b.Hash, i, e.Seq, w[i-1].Seq)
			}
		}
	}
	exp := report.ExportStudy(sr, 1)
	if exp.Triage == nil {
		t.Fatal("export dropped the triage section")
	}
	for _, be := range exp.Triage.Buckets {
		if len(be.Flight) == 0 || be.Trace == "" {
			t.Errorf("exported bucket %s lost its flight window (trace=%q, %d events)",
				be.Hash, be.Trace, len(be.Flight))
		}
	}
}

func TestStatusBoardTracksRun(t *testing.T) {
	board := farm.NewStatusBoard()
	res, err := farm.Run(farm.Config{
		Seed:      1,
		Campaigns: []core.Campaign{core.CampaignA},
		Packages:  testPackages,
		Gen:       testGen(),
		Sharding:  core.Sharding{Workers: 2},
		Status:    board,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := board.Status()
	if s.Total != len(testPackages) || s.Done != len(testPackages) {
		t.Fatalf("status total=%d done=%d, want %d", s.Total, s.Done, len(testPackages))
	}
	if s.Pending != 0 || s.Running != 0 || s.Failed != 0 {
		t.Fatalf("finished run left pending=%d running=%d failed=%d", s.Pending, s.Running, s.Failed)
	}
	if s.Workers != 2 {
		t.Fatalf("workers = %d, want 2", s.Workers)
	}
	if s.IntentsTotal != res.Sent {
		t.Fatalf("intentsTotal = %d, want %d", s.IntentsTotal, res.Sent)
	}
	for _, sh := range s.Shards {
		if sh.State != farm.StateDone {
			t.Fatalf("shard %s state = %q", sh.Key, sh.State)
		}
		if sh.Source != farm.BootClone && sh.Source != farm.BootFresh && sh.Source != farm.BootReuse {
			t.Fatalf("shard %s boot source = %q", sh.Key, sh.Source)
		}
		if sh.Sent == 0 {
			t.Errorf("shard %s reported zero intents", sh.Key)
		}
	}

	srv := httptest.NewServer(farm.StatusHandler(board))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap farm.StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Done != len(testPackages) || len(snap.Shards) != len(testPackages) {
		t.Fatalf("served snapshot done=%d shards=%d", snap.Done, len(snap.Shards))
	}
}

// TestStatusHandlerCampaignFilter: /farm?campaign=<letter> narrows the
// board to one campaign's shards with recomputed tallies, and a letter
// outside the plan answers 404 with a JSON error body.
func TestStatusHandlerCampaignFilter(t *testing.T) {
	board := farm.NewStatusBoard()
	if _, err := farm.Run(farm.Config{
		Seed:      1,
		Campaigns: []core.Campaign{core.CampaignA, core.CampaignB},
		Packages:  testPackages,
		Gen:       testGen(),
		Sharding:  core.Sharding{Workers: 2},
		Status:    board,
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(farm.StatusHandler(board))
	defer srv.Close()

	get := func(query string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Filtered view: only campaign B's shards, tallies recomputed.
	resp, body := get("?campaign=b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?campaign=b status = %d, body %s", resp.StatusCode, body)
	}
	var snap farm.StatusSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != len(testPackages) || snap.Done != len(testPackages) {
		t.Fatalf("filtered total=%d done=%d, want %d", snap.Total, snap.Done, len(testPackages))
	}
	for _, sh := range snap.Shards {
		if sh.Key.Campaign.Letter() != "B" {
			t.Fatalf("filtered view leaked shard %s", sh.Key)
		}
	}

	// A campaign outside the plan: 404 with a JSON error body.
	resp, body = get("?campaign=D")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("?campaign=D status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 Content-Type = %q, want JSON", ct)
	}
	var errBody map[string]string
	if err := json.Unmarshal(body, &errBody); err != nil || errBody["error"] == "" {
		t.Fatalf("404 body = %s (err %v), want {\"error\": ...}", body, err)
	}
}

func TestStatusBoardNilSafe(t *testing.T) {
	var board *farm.StatusBoard
	if s := board.Status(); s.Total != 0 {
		t.Fatalf("nil board status = %+v", s)
	}
	srv := httptest.NewServer(farm.StatusHandler(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestTriageMinimizedReproducers(t *testing.T) {
	res, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: testPackages,
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triage == nil || res.Triage.Crashes == 0 {
		t.Skip("no crashes at this scale; nothing to minimize")
	}
	reproduced := 0
	for _, b := range res.Triage.Buckets {
		if !b.Reproduced {
			continue
		}
		reproduced++
		if b.Minimized == nil {
			t.Errorf("bucket %016x reproduced but has no minimized intent", b.Hash)
		}
		if b.Minimized != nil && b.Minimized.Component != b.Exemplar.Intent.Component {
			t.Errorf("bucket %016x minimization dropped the component", b.Hash)
		}
		if b.Trials == 0 {
			t.Errorf("bucket %016x reproduced with zero oracle trials", b.Hash)
		}
	}
	t.Logf("triage: %d raw, %d unique, %d reproduced+minimized",
		res.Triage.Crashes, res.Triage.Unique(), reproduced)
}
