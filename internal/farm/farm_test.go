package farm_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// testPackages is a small slice of the wear fleet covering crashy and quiet
// apps, enough for every campaign to produce work without full-study cost.
var testPackages = []string{"com.heartwatch.wear", "com.strava.wear", "com.whatsapp.wear"}

func testGen() core.GeneratorConfig { return experiments.QuickGen(10) }

// exportForCompare renders a study result as canonical JSON with the
// execution metadata (worker count, checkpoint path, resumed count) blanked:
// the determinism contract is about the scientific outputs — Table III,
// Fig 3a, campaign counts, triage buckets — not about how the run executed.
func exportForCompare(t *testing.T, sr *experiments.StudyResult) string {
	t.Helper()
	exp := report.ExportStudy(sr, 1)
	exp.Sharding = nil
	data, err := json.MarshalIndent(exp, "", " ")
	if err != nil {
		t.Fatalf("marshal export: %v", err)
	}
	return string(data)
}

func runStudy(t *testing.T, sharding core.Sharding) *experiments.StudyResult {
	t.Helper()
	sr, err := experiments.RunWearStudy(experiments.Options{
		Seed:     1,
		Gen:      testGen(),
		Packages: testPackages,
		Sharding: sharding,
	})
	if err != nil {
		t.Fatalf("study: %v", err)
	}
	return sr
}

func TestWorkerCountInvariance(t *testing.T) {
	serial := runStudy(t, core.Sharding{Workers: 1})
	parallel := runStudy(t, core.Sharding{Workers: 8})

	if serial.Sent == 0 {
		t.Fatal("study sent nothing; scale the generator up")
	}
	if got, want := exportForCompare(t, parallel), exportForCompare(t, serial); got != want {
		t.Errorf("workers=8 export differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", want, got)
	}
	if serial.Sharding == nil || serial.Sharding.Workers != 1 {
		t.Fatalf("serial sharding info = %+v", serial.Sharding)
	}
	if parallel.Sharding == nil || parallel.Sharding.Workers != 8 {
		t.Fatalf("parallel sharding info = %+v", parallel.Sharding)
	}
	wantShards := 4 * len(testPackages)
	if serial.Sharding.Shards != wantShards {
		t.Fatalf("shards = %d, want %d", serial.Sharding.Shards, wantShards)
	}
	if serial.Triage == nil {
		t.Fatal("farm run must carry a triage result")
	}
	if serial.Triage.Crashes > 0 && serial.Triage.Unique() == 0 {
		t.Fatal("crashes observed but no buckets")
	}
	if serial.Triage.Unique() > serial.Triage.Crashes {
		t.Fatal("more unique signatures than raw crashes")
	}
}

func TestResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	killed := filepath.Join(dir, "killed.ckpt")

	uninterrupted := runStudy(t, core.Sharding{Workers: 2, Checkpoint: full})
	want := exportForCompare(t, uninterrupted)

	// Simulate a SIGKILL after three shards: keep the header plus three
	// records from the completed journal and append a torn partial line.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	const keep = 3
	torn := strings.Join(lines[:1+keep], "\n") + "\n" + `{"index":7,"key":{"camp`
	if err := os.WriteFile(killed, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true})
	if got := exportForCompare(t, resumed); got != want {
		t.Errorf("resumed run differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}
	if resumed.Sharding.Resumed != keep {
		t.Fatalf("resumed = %d shards, want %d", resumed.Sharding.Resumed, keep)
	}

	// The journal is now complete: resuming again replays every shard.
	replayed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true})
	if got := exportForCompare(t, replayed); got != want {
		t.Error("full-journal replay differs from uninterrupted run")
	}
	if replayed.Sharding.Resumed != replayed.Sharding.Shards {
		t.Fatalf("replay resumed %d of %d shards", replayed.Sharding.Resumed, replayed.Sharding.Shards)
	}
}

func TestResumeRejectsForeignJournal(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: testPackages[:1],
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 2, Checkpoint: ckpt},
	}); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	// Same checkpoint, different seed: the plan fingerprint must not match.
	_, err := farm.Run(farm.Config{
		Seed:     2,
		Packages: testPackages[:1],
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 2, Checkpoint: ckpt, Resume: true},
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

func TestResumeWithoutJournalStartsFresh(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "never-written.ckpt")
	res, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: testPackages[:1],
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 2, Checkpoint: ckpt, Resume: true},
	})
	if err != nil {
		t.Fatalf("resume against absent journal: %v", err)
	}
	if res.Resumed != 0 {
		t.Fatalf("resumed = %d, want 0", res.Resumed)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("fresh journal not created: %v", err)
	}
}

func TestUnknownPackageFails(t *testing.T) {
	_, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: []string{"com.does.not.exist"},
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "com.does.not.exist") {
		t.Fatalf("err = %v, want unknown-package failure", err)
	}
}

func TestFarmTelemetryAndProgress(t *testing.T) {
	reg := telemetry.NewRegistry()
	var calls int
	lastDone := 0
	res, err := farm.Run(farm.Config{
		Seed:      1,
		Campaigns: []core.Campaign{core.CampaignA},
		Packages:  testPackages,
		Gen:       testGen(),
		Sharding:  core.Sharding{Workers: 4},
		Telemetry: reg,
		Progress: func(done, total int, key farm.ShardKey, sentSoFar int) {
			calls++
			if done <= lastDone {
				t.Errorf("progress done went %d -> %d", lastDone, done)
			}
			lastDone = done
			if total != len(testPackages) {
				t.Errorf("total = %d, want %d", total, len(testPackages))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(testPackages) {
		t.Fatalf("progress calls = %d, want %d", calls, len(testPackages))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["farm_shards_done_total"]; got != uint64(len(testPackages)) {
		t.Fatalf("farm_shards_done_total = %d", got)
	}
	if got := snap.Counters["farm_intents_total"]; got != uint64(res.Sent) {
		t.Fatalf("farm_intents_total = %d, want %d", got, res.Sent)
	}
	if snap.Gauges["farm_workers"] != 4 {
		t.Fatalf("farm_workers = %v", snap.Gauges["farm_workers"])
	}
	if snap.Gauges["farm_shards_inflight"] != 0 {
		t.Fatalf("farm_shards_inflight = %v after completion", snap.Gauges["farm_shards_inflight"])
	}
}

func TestTriageMinimizedReproducers(t *testing.T) {
	res, err := farm.Run(farm.Config{
		Seed:     1,
		Packages: testPackages,
		Gen:      testGen(),
		Sharding: core.Sharding{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triage == nil || res.Triage.Crashes == 0 {
		t.Skip("no crashes at this scale; nothing to minimize")
	}
	reproduced := 0
	for _, b := range res.Triage.Buckets {
		if !b.Reproduced {
			continue
		}
		reproduced++
		if b.Minimized == nil {
			t.Errorf("bucket %016x reproduced but has no minimized intent", b.Hash)
		}
		if b.Minimized != nil && b.Minimized.Component != b.Exemplar.Intent.Component {
			t.Errorf("bucket %016x minimization dropped the component", b.Hash)
		}
		if b.Trials == 0 {
			t.Errorf("bucket %016x reproduced with zero oracle trials", b.Hash)
		}
	}
	t.Logf("triage: %d raw, %d unique, %d reproduced+minimized",
		res.Triage.Crashes, res.Triage.Unique(), reproduced)
}
