package qgj_test

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	qgj "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/wearos"
)

// TestTelemetryMatchesReport is the end-to-end acceptance check for the
// observability subsystem: run a campaign with the live exposition endpoint
// up, scrape /metrics, and verify the analysis_components manifestation
// gauges agree exactly with the final analysis.Report for the same run —
// plus the presence of the intent-injection counters and the binder latency
// histogram.
func TestTelemetryMatchesReport(t *testing.T) {
	dev := wearos.New(wearos.DefaultWatchConfig())
	fleet := qgj.BuildWearFleet(7)
	if err := fleet.InstallInto(dev); err != nil {
		t.Fatal(err)
	}
	col := analysis.NewCollector().UseTelemetry(dev.Telemetry())
	dev.Logcat().Subscribe(col)

	srv, err := qgj.ServeTelemetry("127.0.0.1:0", dev.Telemetry(), dev.Tracer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inj := &core.Injector{Dev: dev, Cfg: benchGen}
	var sent int
	for _, pkg := range fleet.Packages[:4] {
		for _, c := range []core.Campaign{core.CampaignA, core.CampaignB} {
			sent += inj.FuzzApp(c, pkg).Sent
		}
	}
	if sent == 0 {
		t.Fatal("campaigns sent nothing")
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	// The exposition carries the injection counters and the binder latency
	// histogram family.
	for _, want := range []string{
		`qgj_intents_injected_total{campaign="A"`,
		`qgj_intents_generated_total{campaign="B"`,
		"# TYPE binder_transact_seconds histogram",
		`binder_transact_seconds_bucket{le="+Inf"}`,
		"# TYPE wearos_dispatch_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The manifestation gauges must match the final Report exactly.
	report := col.Report()
	want := map[analysis.Manifestation]int{}
	for _, cr := range report.Components {
		want[cr.Manifestation()]++
	}
	for _, m := range analysis.AllManifestations {
		got, ok := scrapeGauge(out, `analysis_components{manifestation="`+m.String()+`"}`)
		if !ok {
			t.Fatalf("exposition has no analysis_components gauge for %s:\n%s", m, out)
		}
		if got != want[m] {
			t.Errorf("analysis_components{%s} = %d, want %d (from Report)", m, got, want[m])
		}
	}

	// Total injections exposed must equal what the fuzzer reported sending.
	var injected int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "qgj_intents_injected_total{") {
			if v, ok := sampleValue(line); ok {
				injected += v
			}
		}
	}
	if injected != sent {
		t.Errorf("qgj_intents_injected_total sums to %d, fuzzer sent %d", injected, sent)
	}
}

// TestTelemetryDoesNotPerturbSimulation pins the property the overhead
// benchmarks rely on: enabling or disabling telemetry must not change a
// single delivery outcome. The simulation is deterministic for a seed, so
// the two runs must agree exactly.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	run := func(disable bool) (map[wearos.DeliveryResult]int, int) {
		cfg := wearos.DefaultWatchConfig()
		cfg.DisableTelemetry = disable
		dev := wearos.New(cfg)
		fleet := qgj.BuildWearFleet(1)
		if err := fleet.InstallInto(dev); err != nil {
			t.Fatal(err)
		}
		inj := &core.Injector{Dev: dev, Cfg: benchGen}
		ar := inj.FuzzApp(core.CampaignA, fleet.Packages[0])
		return ar.Results(), dev.BootCount()
	}
	onRes, onBoot := run(false)
	offRes, offBoot := run(true)
	if onBoot != offBoot {
		t.Errorf("boot count differs: telemetry on %d, off %d", onBoot, offBoot)
	}
	for r := wearos.DeliveredNoEffect; r <= wearos.DeviceRebooted; r++ {
		if onRes[r] != offRes[r] {
			t.Errorf("%s count differs: telemetry on %d, off %d", r, onRes[r], offRes[r])
		}
	}
}

// scrapeGauge finds the sample whose name{labels} prefix matches exactly.
func scrapeGauge(exposition, prefix string) (int, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			return mustAtoi(strings.TrimPrefix(line, prefix+" "))
		}
	}
	return 0, false
}

func sampleValue(line string) (int, bool) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0, false
	}
	return mustAtoi(line[i+1:])
}

func mustAtoi(s string) (int, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return int(f), true
}
