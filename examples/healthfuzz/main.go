// Healthfuzz: the paper's health-app storyline in one runnable scenario.
//
//  1. A Health/Fitness app reads sensors through the Google Fit facade —
//     the error-propagation dependency Section III-C hypothesizes about.
//  2. QGJ drives campaign A against the SensorManager-based health app
//     (Moto Body); the escalation of the paper's first reboot post-mortem
//     unfolds live: three ANRs -> SIGABRT of the sensor service -> device
//     reboot.
//  3. The Google Fit client observes the propagation: its reads fail with
//     a DeadObjectException root cause while the sensor service is down.
package main

import (
	"fmt"
	"log"
	"strings"

	qgj "repro"
	"repro/internal/gfit"
)

func main() {
	watch := qgj.NewWatch("moto360")
	fleet := qgj.BuildWearFleet(1)
	if err := fleet.InstallInto(watch.OS); err != nil {
		log.Fatal(err)
	}

	// A health app's Google Fit session over the shared sensor service.
	fit := gfit.NewClient("com.fitwell.demo", 4242, watch.OS.SensorService(), watch.OS.Logger())
	if thr := fit.StartSession(); thr != nil {
		log.Fatal(thr)
	}
	hr, thr := fit.ReadHeartRate()
	if thr != nil {
		log.Fatal(thr)
	}
	fmt.Printf("before fuzzing: heart rate = %.0f bpm (sensor service healthy)\n", hr)

	// Stream the log into the analyzer while campaign A runs against the
	// SensorManager health app.
	col := qgj.NewCollector()
	watch.OS.Logcat().Subscribe(col)

	fz := qgj.NewFuzzer(watch.OS, qgj.GeneratorConfig{Seed: 1})
	pkg := watch.OS.Registry().Package("com.motorola.omni")
	run := fz.FuzzApp(qgj.CampaignA, pkg)
	fmt.Printf("campaign A against %s: %d intents\n", pkg.Name, run.Sent)

	rep := col.Report()
	fmt.Printf("reboots observed: %d, core service deaths: %v\n",
		len(rep.RebootTimes), rep.CoreServiceDeaths)
	fmt.Printf("watch boot count: %d\n", watch.OS.BootCount())

	// The post-mortem, reconstructed from the log like Section IV-B does.
	for _, cn := range rep.ComponentNames() {
		cr := rep.Components[cn]
		if cr.ANRs > 0 || cr.RebootInvolved {
			fmt.Printf("  %-64s anrs=%d rebootInvolved=%v\n",
				cn.FlattenToString(), cr.ANRs, cr.RebootInvolved)
		}
	}

	// The escalation artifacts in raw logcat.
	for _, line := range strings.Split(watch.OS.Logcat().Dump(), "\n") {
		if strings.Contains(line, "SIGABRT") || strings.Contains(line, "REBOOTING") {
			fmt.Println("  logcat>", strings.TrimSpace(line))
		}
	}

	// Error propagation into Google Fit: reads fail against the fresh
	// (post-reboot) sensor service because the session died with the old
	// one — the app must handle IllegalStateException, or worse.
	if _, thr := fit.ReadHeartRate(); thr != nil {
		fmt.Printf("after reboot: Fit read fails: %v (root cause %s)\n",
			thr, thr.Root().Class)
	}
}
