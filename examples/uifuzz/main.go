// UIFuzz: the QGJ-UI experiment on the Android Watch emulator, scaled down
// so it runs in well under a second. Monkey generates UI events and
// intents; QGJ-UI mutates them (semi-valid vs random) and replays them
// through the adb shell utilities; Table V's contrast emerges: semi-valid
// mutations reach app code and occasionally crash a launcher, random
// mutations mostly die in am/pm/input sanitization.
package main

import (
	"fmt"
	"log"

	qgj "repro"
)

func main() {
	const events = 8000

	for _, mode := range []qgj.UIMode{qgj.SemiValid, qgj.Random} {
		// A fresh emulator per mode keeps the runs independent, the
		// paper's reason for using an emulator in the first place.
		emu := qgj.NewEmulator("wear-emulator")
		fleet := qgj.BuildEmulatorFleet(1)
		if err := fleet.InstallInto(emu.OS); err != nil {
			log.Fatal(err)
		}

		fz := qgj.NewUIFuzzer(emu.OS)
		out := fz.Run(mode, qgj.UIConfig{Seed: 1, Events: events})
		fmt.Printf("%-10s injected=%d exceptions=%d (%.2f%%) crashes=%d (%.3f%%)\n",
			out.Mode, out.Injected, out.ExceptionsRaised, 100*out.ExceptionRate(),
			out.Crashes, 100*out.CrashRate())

		// The adb utilities' sanitization is observable directly: the
		// paper's example random event is absorbed, and pm rejects a
		// garbage permission string.
		if mode == qgj.Random {
			sh := qgj.NewShell(emu.OS)
			tap := sh.Run("input tap -8803.85 4668.17")
			fmt.Printf("  input tap -8803.85 4668.17  -> exit %d (clamped, no crash)\n", tap.ExitCode)
			pm := sh.Run("pm grant com.google.android.deskclock 'S0me.r@ndom.$trinG'")
			fmt.Printf("  pm grant ... S0me.r@ndom.$trinG -> %s\n", pm.Output)
		}
	}
}
