// Rejuvenation: the paper's Section IV-E mitigation proposal, live.
//
// The study's two reboots were "a manifestation of error accumulation in
// the Android watch"; the authors point at software-aging research as the
// remedy. This example runs the sensor-escalation workload twice — once on
// the stock aging model (reboots, like the Moto 360 did) and once with
// proactive rejuvenation enabled (the system restarts a wedged app before
// the watchdog shoots the sensor service) — and prints the instability
// timeline each run produced.
package main

import (
	"fmt"
	"log"

	qgj "repro"
	"repro/internal/wearos"
)

func main() {
	for _, variant := range []struct {
		name  string
		aging wearos.AgingConfig
	}{
		{"baseline (paper's device)", wearos.DefaultAgingConfig()},
		{"with rejuvenation", wearos.RejuvenatedAgingConfig()},
	} {
		cfg := wearos.DefaultWatchConfig()
		cfg.Aging = variant.aging
		dev := wearos.New(cfg)
		fleet := qgj.BuildWearFleet(1)
		if err := fleet.InstallInto(dev); err != nil {
			log.Fatal(err)
		}

		// Campaign A against the SensorManager health app: the paper's
		// first escalation chain.
		fz := qgj.NewFuzzer(dev, qgj.GeneratorConfig{Seed: 1})
		pkg := dev.Registry().Package("com.motorola.omni")
		run := fz.FuzzApp(qgj.CampaignA, pkg)

		fmt.Printf("%s:\n", variant.name)
		fmt.Printf("  intents sent:   %d\n", run.Sent)
		fmt.Printf("  reboots:        %d\n", dev.BootCount()-1)
		fmt.Printf("  rejuvenations:  %d\n", dev.SystemServer().Rejuvenations())

		// The instability timeline shows the aging signature: spikes at
		// each ANR, and either a catastrophic jump (baseline: SIGABRT adds
		// 70 and the device reboots, clearing the timeline) or a defused
		// plateau (rejuvenated).
		tl := dev.SystemServer().InstabilityTimeline()
		fmt.Printf("  timeline samples since last boot: %d\n", len(tl))
		peak := 0.0
		for _, s := range tl {
			if s.Value > peak {
				peak = s.Value
			}
		}
		fmt.Printf("  peak instability since last boot: %.1f (reboot threshold %.0f)\n\n",
			peak, variant.aging.RebootThreshold)
	}
}
