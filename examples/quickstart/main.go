// Quickstart: boot a simulated watch, install the paper's 46-app fleet,
// pair it with a phone, install QGJ on both, fuzz one app over the Wear
// MessageAPI, and read the outcome from logcat — the whole toolchain in
// ~40 lines of API.
package main

import (
	"fmt"
	"log"

	qgj "repro"
)

func main() {
	// Devices: a phone and a watch, bonded over Bluetooth.
	phone := qgj.NewPhone("nexus4")
	watch := qgj.NewWatch("moto360")
	qgj.Pair(phone, watch)

	// The study's wearable app population (Table II), installed on the
	// watch with deterministic behaviour models for seed 1.
	fleet := qgj.BuildWearFleet(1)
	if err := fleet.InstallInto(watch.OS); err != nil {
		log.Fatal(err)
	}

	// QGJ Mobile on the phone, QGJ Wear on the watch.
	mobile := qgj.InstallQGJ(phone, watch)

	// Step 1 of the workflow: what can we fuzz?
	comps, err := mobile.ListWearComponents()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wearable exposes %d components\n", len(comps))

	// Steps 2-4: fuzz one app with campaign A (semi-valid action/data),
	// scaled down so the demo finishes instantly.
	summary, err := mobile.StartFuzz("com.strava.wear", qgj.CampaignA, qgj.QuickGen(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(summary)

	// Ground truth comes from logcat, exactly like the paper: pull the log
	// and classify manifestations per component.
	col := qgj.NewCollector()
	col.ConsumeAll(watch.OS.Logcat().Snapshot())
	rep := col.Report()
	for _, cn := range rep.ComponentNames() {
		cr := rep.Components[cn]
		fmt.Printf("  %-60s %-12s (deliveries=%d, security=%d)\n",
			cn.FlattenToString(), cr.Manifestation(), cr.Deliveries, cr.Security)
	}
}
