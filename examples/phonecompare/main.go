// Phonecompare: the wear-vs-phone contrast the paper draws in Sections
// IV-A and IV-C. Runs both FIC studies at reduced scale and prints the
// crash-cause distributions side by side: on the phone
// NullPointerException leads with ClassNotFoundException second; on the
// watch, ClassNotFound nearly vanishes while IllegalState/IllegalArgument
// carry a larger share.
package main

import (
	"fmt"
	"log"
	"sort"

	qgj "repro"
	"repro/internal/javalang"
)

func main() {
	gen := qgj.QuickGen(2) // ~1/2 of full volume per axis; still minutes of virtual time

	wear, err := qgj.RunWearStudy(qgj.StudyOptions{Seed: 1, Gen: gen})
	if err != nil {
		log.Fatal(err)
	}
	phone, err := qgj.RunPhoneStudy(qgj.StudyOptions{Seed: 1, Gen: gen})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wear:  %7d intents, %d reboots\n", wear.Sent, wear.Reboots())
	fmt.Printf("phone: %7d intents, %d reboots\n\n", phone.Sent, phone.Reboots())

	wearShares := crashShares(wear)
	phoneShares := crashShares(phone)

	classes := map[javalang.Class]bool{}
	for c := range wearShares {
		classes[c] = true
	}
	for c := range phoneShares {
		classes[c] = true
	}
	ordered := make([]javalang.Class, 0, len(classes))
	for c := range classes {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return phoneShares[ordered[i]] > phoneShares[ordered[j]]
	})

	fmt.Printf("%-44s %10s %10s\n", "crash root cause", "phone", "wear")
	for _, c := range ordered {
		fmt.Printf("%-44s %9.1f%% %9.1f%%\n", c.Simple(), 100*phoneShares[c], 100*wearShares[c])
	}
}

// crashShares computes each exception class's share of crash root causes.
func crashShares(sr *qgj.StudyResult) map[javalang.Class]float64 {
	counts := sr.Combined.CrashClassTotals()
	total := 0
	for _, cc := range counts {
		total += cc.Count
	}
	out := make(map[javalang.Class]float64, len(counts))
	if total == 0 {
		return out
	}
	for _, cc := range counts {
		out[cc.Class] = float64(cc.Count) / float64(total)
	}
	return out
}
