// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation section. Table benches regenerate their artifact end to end
// (fleet -> campaigns -> logs -> analysis) at a reduced-but-representative
// scale per iteration; figure benches run the aggregation queries against a
// cached study computed once. Micro-benches cover the injection hot path.
//
// Run with: go test -bench=. -benchmem
package qgj_test

import (
	"sync"
	"testing"

	qgj "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/intent"
	"repro/internal/logcat"
	"repro/internal/manifest"
	"repro/internal/notify"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

// benchGen is the scaled-down generator used by per-iteration study
// benches (~1/64 of campaign A's full volume).
var benchGen = experiments.QuickGen(8)

// cachedStudy runs one reduced wear study for the figure benches.
var (
	studyOnce sync.Once
	study     *experiments.StudyResult
)

func cachedWearStudy(b *testing.B) *experiments.StudyResult {
	b.Helper()
	studyOnce.Do(func() {
		sr, err := experiments.RunWearStudy(experiments.Options{Seed: 1, Gen: benchGen})
		if err != nil {
			b.Fatal(err)
		}
		study = sr
	})
	return study
}

// BenchmarkTableI_CampaignGeneration regenerates Table I's workload: the
// four campaigns' intent streams for one component at full paper scale.
func BenchmarkTableI_CampaignGeneration(b *testing.B) {
	target := intent.ComponentName{Package: "com.bench", Class: "com.bench.ui.Main"}
	cfg := core.GeneratorConfig{Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, c := range core.AllCampaigns {
			c.Generate(target, cfg, core.QGJUID, func(in *intent.Intent) { n++ })
		}
		if n == 0 {
			b.Fatal("generated nothing")
		}
	}
}

// BenchmarkTableII_FleetConstruction regenerates Table II: building the
// 46-app wearable population with all behaviour models.
func BenchmarkTableII_FleetConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := qgj.BuildWearFleet(uint64(i + 1))
		if s := f.Stats(0, 0); s.Apps != 46 {
			b.Fatalf("apps = %d", s.Apps)
		}
	}
}

// BenchmarkTableIII_BehaviorDistribution regenerates Table III: the four
// campaigns against the full wear fleet (reduced volume), classified from
// logs.
func BenchmarkTableIII_BehaviorDistribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.RunWearStudy(experiments.Options{Seed: 1, Gen: benchGen})
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.TableIII(sr)
		if len(rows) != 4 {
			b.Fatal("campaign rows missing")
		}
	}
}

// BenchmarkTableIV_PhoneCrashes regenerates Table IV: the phone-comparison
// study and its crash distribution.
func BenchmarkTableIV_PhoneCrashes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.RunPhoneStudy(experiments.Options{Seed: 1, Gen: benchGen})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, total := experiments.TableIV(sr); total == 0 {
			b.Fatal("no crashes measured")
		}
	}
}

// BenchmarkTableV_UIFuzz regenerates Table V: both QGJ-UI mutation modes
// (reduced event volume).
func BenchmarkTableV_UIFuzz(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunUIStudy(experiments.UIOptions{Seed: 1, Events: 4000})
		if err != nil {
			b.Fatal(err)
		}
		if rows := experiments.TableV(res); len(rows) != 2 {
			b.Fatal("ui rows missing")
		}
	}
}

// BenchmarkFig2_ExceptionTypes regenerates Fig. 2's distribution from the
// cached study.
func BenchmarkFig2_ExceptionTypes(b *testing.B) {
	sr := cachedWearStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := experiments.Fig2(sr)
		if len(s.ByType) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig3a_Manifestations regenerates Fig. 3a.
func BenchmarkFig3a_Manifestations(b *testing.B) {
	sr := cachedWearStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := experiments.Fig3a(sr)
		if mc[analysis.ManifestNoEffect] == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig3b_RootCause regenerates Fig. 3b (blame analysis with equal
// splitting).
func BenchmarkFig3b_RootCause(b *testing.B) {
	sr := cachedWearStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blame := experiments.Fig3b(sr)
		if len(blame) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig4_CrashByOrigin regenerates Fig. 4 (built-in vs third-party).
func BenchmarkFig4_CrashByOrigin(b *testing.B) {
	sr := cachedWearStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f4 := experiments.Fig4(sr)
		if len(f4.CrashAppRate) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- Micro-benchmarks on the injection hot path -----------------------------

// BenchmarkDispatchNoEffect measures one intent delivery through the full
// OS path (permission check, resolution, handler, logging) with telemetry
// on (the default).
func BenchmarkDispatchNoEffect(b *testing.B) {
	benchmarkDispatch(b, wearos.DefaultWatchConfig())
}

// BenchmarkDispatchNoTelemetry is the same delivery with the metric
// registry and span tracer disabled. Comparing against
// BenchmarkDispatchNoEffect bounds the instrumentation overhead on the hot
// path; the budget is <5% (docs/observability.md).
func BenchmarkDispatchNoTelemetry(b *testing.B) {
	cfg := wearos.DefaultWatchConfig()
	cfg.DisableTelemetry = true
	benchmarkDispatch(b, cfg)
}

// BenchmarkDispatchRecorder is the default delivery with the flight
// recorder attached — the farm's triage configuration. Comparing against
// BenchmarkDispatchNoEffect bounds the recorder's overhead on the hot
// path; the budget is <5% (docs/observability.md) and the path must stay
// allocation-free.
func BenchmarkDispatchRecorder(b *testing.B) {
	benchmarkDispatch(b, wearos.DefaultWatchConfig(), func(dev *wearos.OS) {
		dev.SetFlightRecorder(telemetry.NewRecorder(0))
	})
}

// BenchmarkDispatchFaultHooks is the default delivery with a fault-injection
// engine attached whose next window never opens — campaign F's hot path for
// every dispatch outside a fault window. Comparing against
// BenchmarkDispatchNoEffect bounds the dormant hook overhead; the budget is
// <5% (docs/faults.md).
func BenchmarkDispatchFaultHooks(b *testing.B) {
	benchmarkDispatch(b, wearos.DefaultWatchConfig(), func(dev *wearos.OS) {
		plan := &faultinject.Plan{Seed: 1, Budget: 1 << 40, Windows: []faultinject.Window{
			{Kind: faultinject.BinderDead, Start: 1 << 39, End: 1<<39 + 4, Recover: true},
		}}
		eng := faultinject.NewEngine(dev, plan, "com.bench")
		dev.SetFaultHooks(wearos.FaultHooks{Pre: eng.Pre, Post: eng.Post})
	})
}

func benchmarkDispatch(b *testing.B, cfg wearos.Config, setup ...func(*wearos.OS)) {
	dev := wearos.New(cfg)
	pkg := &manifest.Package{
		Name: "com.bench", Category: manifest.NotHealthFitness, Origin: manifest.ThirdParty,
		Components: []*manifest.Component{{
			Name: intent.ComponentName{Package: "com.bench", Class: "com.bench.ui.Main"},
			Type: manifest.Activity, Exported: true,
		}},
	}
	if err := dev.InstallPackage(pkg); err != nil {
		b.Fatal(err)
	}
	for _, fn := range setup {
		fn(dev)
	}
	in := &intent.Intent{
		Action:    "android.intent.action.VIEW",
		Component: pkg.Components[0].Name,
		SenderUID: core.QGJUID,
	}
	in.Data, _ = intent.ParseURI("https://foo.com/")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := dev.StartActivity(in); res != wearos.DeliveredNoEffect {
			b.Fatalf("delivery = %v", res)
		}
	}
}

// BenchmarkCampaignInstrumented and BenchmarkCampaignNoTelemetry run one
// reduced campaign A app-sweep per iteration, with and without the metric
// registry, proving the instrumented pipeline stays within the overhead
// budget at campaign scale (not just per dispatch).
func BenchmarkCampaignInstrumented(b *testing.B) { benchmarkCampaign(b, false) }

func BenchmarkCampaignNoTelemetry(b *testing.B) { benchmarkCampaign(b, true) }

func benchmarkCampaign(b *testing.B, disableTelemetry bool) {
	// One device for the whole benchmark: per-iteration device construction
	// would dominate the GC profile and drown the instrumentation delta this
	// benchmark exists to measure. Both variants execute the identical intent
	// sequence (telemetry does not perturb the simulation).
	cfg := wearos.DefaultWatchConfig()
	cfg.DisableTelemetry = disableTelemetry
	dev := wearos.New(cfg)
	fleet := qgj.BuildWearFleet(1)
	if err := fleet.InstallInto(dev); err != nil {
		b.Fatal(err)
	}
	inj := &core.Injector{Dev: dev, Cfg: benchGen}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := inj.FuzzApp(core.CampaignA, fleet.Packages[0])
		if run.Sent == 0 {
			b.Fatal("campaign sent nothing")
		}
	}
}

// BenchmarkCollectorConsume measures the streaming analyzer on a
// representative log slice.
func BenchmarkCollectorConsume(b *testing.B) {
	dev := wearos.New(wearos.DefaultWatchConfig())
	fleet := qgj.BuildWearFleet(1)
	if err := fleet.InstallInto(dev); err != nil {
		b.Fatal(err)
	}
	inj := &core.Injector{Dev: dev, Cfg: experiments.QuickGen(10)}
	inj.FuzzApp(core.CampaignA, fleet.Packages[0])
	entries := dev.Logcat().Snapshot()
	if len(entries) == 0 {
		b.Fatal("no log entries")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := analysis.NewCollector()
		col.ConsumeAll(entries)
	}
	b.SetBytes(int64(len(entries)))
}

// BenchmarkLogcatAppend measures the log substrate itself.
func BenchmarkLogcatAppend(b *testing.B) {
	buf := logcat.NewBuffer(1 << 14)
	e := logcat.Entry{PID: 1000, TID: 1000, Level: logcat.Info,
		Tag: logcat.TagActivityManager, Message: "START u0 {act=android.intent.action.VIEW}"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Append(e)
	}
}

// BenchmarkLogcatFormatParse measures the threadtime format round trip the
// pull path exercises.
func BenchmarkLogcatFormatParse(b *testing.B) {
	e := logcat.Entry{PID: 1234, TID: 1240, Level: logcat.Error,
		Tag: logcat.TagAndroidRuntime, Message: "FATAL EXCEPTION: main"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := e.Format()
		if _, ok := logcat.ParseLine(line, 0); !ok {
			b.Fatal("parse failed")
		}
	}
}

// BenchmarkIntentString measures the intent flattening used on every
// logged delivery.
func BenchmarkIntentString(b *testing.B) {
	in := &intent.Intent{
		Action:    "android.intent.action.DIAL",
		Component: intent.ComponentName{Package: "com.bench", Class: "com.bench.ui.Main"},
	}
	in.Data, _ = intent.ParseURI("tel:123")
	in.PutExtra("k", intent.StringValue("v"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := in.String(); len(s) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- Extension benches --------------------------------------------------------

// BenchmarkAblationAging regenerates the aging-model ablation table: the
// escalation workload under the four system-server configurations.
func BenchmarkAblationAging(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAgingAblations(1, benchGen)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("ablation rows missing")
		}
	}
}

// BenchmarkAblationRejuvenation regenerates the Section IV-E rejuvenation
// counterfactual.
func BenchmarkAblationRejuvenation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunRejuvenationStudy(1, benchGen)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Sent == 0 {
			b.Fatal("nothing sent")
		}
	}
}

// BenchmarkAblationValidationEras regenerates the JJB-era historical
// comparison (legacy vs modern phone fleets).
func BenchmarkAblationValidationEras(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.CompareValidationEras(experiments.Options{Seed: 1, Gen: benchGen})
		if err != nil {
			b.Fatal(err)
		}
		if cmp.Components == 0 {
			b.Fatal("empty comparison")
		}
	}
}

// BenchmarkNotificationFuzz measures the notification-action fuzzing
// extension (the Wear notification surface of Section II-B).
func BenchmarkNotificationFuzz(b *testing.B) {
	fleet := qgj.BuildWearFleet(1)
	dev := wearos.New(wearos.DefaultWatchConfig())
	if err := fleet.InstallInto(dev); err != nil {
		b.Fatal(err)
	}
	m := notify.NewManager(dev)
	if posted := notify.SeedFromFleet(m); posted == 0 {
		b.Fatal("no notifications seeded")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := notify.FuzzActions(m, notify.SemiValid, uint64(i+1), 1)
		if out.Fired == 0 {
			b.Fatal("nothing fired")
		}
	}
}
