package qgj_test

import (
	"strings"
	"testing"

	qgj "repro"
)

// TestPublicAPIWorkflow drives the library exactly the way the README's
// quickstart does: devices, fleet, QGJ pair, fuzz, analyze.
func TestPublicAPIWorkflow(t *testing.T) {
	phone := qgj.NewPhone("nexus4")
	watch := qgj.NewWatch("moto360")
	qgj.Pair(phone, watch)

	fleet := qgj.BuildWearFleet(1)
	if err := fleet.InstallInto(watch.OS); err != nil {
		t.Fatal(err)
	}
	mobile := qgj.InstallQGJ(phone, watch)

	comps, err := mobile.ListWearComponents()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 912 {
		t.Fatalf("components = %d, want 912 (Table II)", len(comps))
	}

	sum, err := mobile.StartFuzz("com.strava.wear", qgj.CampaignB, qgj.QuickGen(4))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sent == 0 {
		t.Fatal("no intents sent")
	}

	col := qgj.NewCollector()
	col.ConsumeAll(watch.OS.Logcat().Snapshot())
	rep := col.Report()
	if len(rep.Components) == 0 {
		t.Fatal("analyzer saw nothing")
	}
	for _, cr := range rep.Components {
		m := cr.Manifestation()
		if m < qgj.NoEffect || m > qgj.Reboot {
			t.Fatalf("manifestation out of range: %v", m)
		}
	}
}

func TestPublicShellAndUIFuzzer(t *testing.T) {
	emu := qgj.NewEmulator("emu")
	fleet := qgj.BuildEmulatorFleet(1)
	if err := fleet.InstallInto(emu.OS); err != nil {
		t.Fatal(err)
	}
	sh := qgj.NewShell(emu.OS)
	res := sh.Run("pm list")
	if !strings.Contains(res.Output, "package:") {
		t.Fatalf("pm list output = %q", res.Output)
	}
	out := qgj.NewUIFuzzer(emu.OS).Run(qgj.SemiValid, qgj.UIConfig{Seed: 1, Events: 1000})
	if out.Injected != 1000 {
		t.Fatalf("injected = %d", out.Injected)
	}
}

func TestPublicStudyEntryPoints(t *testing.T) {
	sr, err := qgj.RunWearStudy(qgj.StudyOptions{
		Seed:     1,
		Gen:      qgj.QuickGen(20),
		Packages: []string{"com.spotify.wear"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Sent == 0 || len(sr.Campaigns) != 4 {
		t.Fatalf("study result = %+v", sr)
	}
	ui, err := qgj.RunUIStudy(qgj.UIStudyOptions{Seed: 1, Events: 500})
	if err != nil {
		t.Fatal(err)
	}
	if ui.SemiValid.Injected != 500 || ui.Random.Injected != 500 {
		t.Fatal("ui study volumes wrong")
	}
}

func TestPublicFuzzerDirect(t *testing.T) {
	watch := qgj.NewWatch("w")
	fleet := qgj.BuildWearFleet(2)
	if err := fleet.InstallInto(watch.OS); err != nil {
		t.Fatal(err)
	}
	fz := qgj.NewFuzzer(watch.OS, qgj.QuickGen(10))
	pkg := watch.OS.Registry().Package("com.whatsapp.wear")
	run := fz.FuzzApp(qgj.CampaignD, pkg)
	if run.Sent == 0 {
		t.Fatal("direct fuzzer sent nothing")
	}
}
